//! The Quest synthetic-record model: attribute samplers and classification
//! functions F1–F10.
//!
//! ScalParC's training sets "were artificially generated using a scheme
//! similar to that used in SPRINT" (§5); SPRINT in turn uses the synthetic
//! data of Agrawal et al., *Database Mining: A Performance Perspective*
//! (IEEE TKDE 1993): nine attributes of a hypothetical loan applicant and
//! ten boolean classification functions of increasing complexity. The
//! functions below follow the published definitions; where the original
//! leaves a coefficient ambiguous we document the choice inline. Group A
//! maps to class 0, group B to class 1.

use rand::Rng;

/// One fully-sampled synthetic record (before projection onto a schema).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuestRecord {
    /// Salary, uniform in `[20_000, 150_000]`.
    pub salary: f32,
    /// Commission: `0` if `salary ≥ 75_000`, else uniform in
    /// `[10_000, 75_000]`.
    pub commission: f32,
    /// Age, uniform in `[20, 80]`.
    pub age: f32,
    /// Education level, uniform in `{0, …, 4}`.
    pub elevel: u32,
    /// Make of car, uniform in `{0, …, 19}`.
    pub car: u32,
    /// Zipcode, uniform in `{0, …, 8}` (the original's `{1, …, 9}` shifted
    /// to zero-based domain indices).
    pub zipcode: u32,
    /// House value, uniform in `[0.5·k·100_000, 1.5·k·100_000]` where
    /// `k = zipcode + 1` (house value depends on zipcode, as in the
    /// original).
    pub hvalue: f32,
    /// Years the house has been owned, uniform in `[1, 30]`.
    pub hyears: f32,
    /// Total loan amount, uniform in `[0, 500_000]`.
    pub loan: f32,
}

impl QuestRecord {
    /// Sample one record.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let salary = rng.gen_range(20_000.0..=150_000.0f32);
        let commission = if salary >= 75_000.0 {
            0.0
        } else {
            rng.gen_range(10_000.0..=75_000.0f32)
        };
        let age = rng.gen_range(20.0..=80.0f32);
        let elevel = rng.gen_range(0..5u32);
        let car = rng.gen_range(0..20u32);
        let zipcode = rng.gen_range(0..9u32);
        let k = (zipcode + 1) as f32;
        let hvalue = rng.gen_range(0.5 * k * 100_000.0..=1.5 * k * 100_000.0f32);
        let hyears = rng.gen_range(1.0..=30.0f32);
        let loan = rng.gen_range(0.0..=500_000.0f32);
        QuestRecord {
            salary,
            commission,
            age,
            elevel,
            car,
            zipcode,
            hvalue,
            hyears,
            loan,
        }
    }

    /// Home equity: `0.1 · hvalue · max(hyears − 20, 0)` (zero for houses
    /// owned less than 20 years), as used by F9 and F10.
    pub fn equity(&self) -> f32 {
        0.1 * self.hvalue * (self.hyears - 20.0).max(0.0)
    }
}

/// The ten classification functions. `classify` returns `true` for Group A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClassFunc {
    /// Age only: A iff `age < 40 ∨ age ≥ 60`.
    F1,
    /// Age × salary bands.
    F2,
    /// Age × education level.
    F3,
    /// Age × education × salary bands.
    F4,
    /// Age × salary × loan bands.
    F5,
    /// Age × (salary + commission) bands — a *linear combination* of two
    /// attributes, invisible to single-attribute splits.
    F6,
    /// Linear disposable income: `0.67·(salary+commission) − 0.2·loan −
    /// 20_000 > 0`.
    F7,
    /// Disposable income with education: `0.67·(salary+commission) −
    /// 5_000·elevel − 0.2·loan − 10_000 > 0`.
    F8,
    /// Disposable income with home equity: `0.67·(salary+commission) −
    /// 5_000·elevel − 0.2·loan + 0.2·equity − 10_000 > 0` (F8 plus an
    /// equity credit).
    F9,
    /// Equity-gated rule: A iff `hyears ≥ 20 ∧ equity > 0.2·loan`
    /// (house-rich applicants), the hardest nonlinear interaction.
    F10,
}

impl ClassFunc {
    /// All ten functions, for sweeps.
    pub const ALL: [ClassFunc; 10] = [
        ClassFunc::F1,
        ClassFunc::F2,
        ClassFunc::F3,
        ClassFunc::F4,
        ClassFunc::F5,
        ClassFunc::F6,
        ClassFunc::F7,
        ClassFunc::F8,
        ClassFunc::F9,
        ClassFunc::F10,
    ];

    /// Parse `"F1"`…`"F10"` (case-insensitive).
    pub fn parse(s: &str) -> Option<ClassFunc> {
        let s = s.to_ascii_uppercase();
        ClassFunc::ALL
            .iter()
            .copied()
            .find(|f| format!("{f:?}") == s)
    }

    /// True iff the record belongs to Group A (class 0).
    pub fn classify(&self, r: &QuestRecord) -> bool {
        let age = r.age;
        let sal = r.salary;
        let young = age < 40.0;
        let middle = (40.0..60.0).contains(&age);
        match self {
            ClassFunc::F1 => !(40.0..60.0).contains(&age),
            ClassFunc::F2 => {
                (young && (50_000.0..=100_000.0).contains(&sal))
                    || (middle && (75_000.0..=125_000.0).contains(&sal))
                    || (!young && !middle && (25_000.0..=75_000.0).contains(&sal))
            }
            ClassFunc::F3 => {
                (young && r.elevel <= 1)
                    || (middle && (1..=3).contains(&r.elevel))
                    || (!young && !middle && (2..=4).contains(&r.elevel))
            }
            ClassFunc::F4 => {
                if young {
                    if r.elevel <= 1 {
                        (25_000.0..=75_000.0).contains(&sal)
                    } else {
                        (50_000.0..=100_000.0).contains(&sal)
                    }
                } else if middle {
                    if (1..=3).contains(&r.elevel) {
                        (50_000.0..=100_000.0).contains(&sal)
                    } else {
                        (75_000.0..=125_000.0).contains(&sal)
                    }
                } else if (2..=4).contains(&r.elevel) {
                    (50_000.0..=100_000.0).contains(&sal)
                } else {
                    (25_000.0..=75_000.0).contains(&sal)
                }
            }
            ClassFunc::F5 => {
                (young
                    && (50_000.0..=100_000.0).contains(&sal)
                    && (100_000.0..=300_000.0).contains(&r.loan))
                    || (middle
                        && (75_000.0..=125_000.0).contains(&sal)
                        && (200_000.0..=400_000.0).contains(&r.loan))
                    || (!young
                        && !middle
                        && (25_000.0..=75_000.0).contains(&sal)
                        && (300_000.0..=500_000.0).contains(&r.loan))
            }
            ClassFunc::F6 => {
                let t = sal + r.commission;
                (young && (50_000.0..=100_000.0).contains(&t))
                    || (middle && (75_000.0..=125_000.0).contains(&t))
                    || (!young && !middle && (25_000.0..=75_000.0).contains(&t))
            }
            ClassFunc::F7 => 0.67 * (sal + r.commission) - 0.2 * r.loan - 20_000.0 > 0.0,
            ClassFunc::F8 => {
                0.67 * (sal + r.commission) - 5_000.0 * r.elevel as f32 - 0.2 * r.loan - 10_000.0
                    > 0.0
            }
            ClassFunc::F9 => {
                0.67 * (sal + r.commission) - 5_000.0 * r.elevel as f32 - 0.2 * r.loan
                    + 0.2 * r.equity()
                    - 10_000.0
                    > 0.0
            }
            ClassFunc::F10 => r.hyears >= 20.0 && r.equity() > 0.2 * r.loan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_many(n: usize, seed: u64) -> Vec<QuestRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| QuestRecord::sample(&mut rng)).collect()
    }

    #[test]
    fn attribute_ranges_hold() {
        for r in sample_many(2000, 1) {
            assert!((20_000.0..=150_000.0).contains(&r.salary));
            assert!(r.commission == 0.0 || (10_000.0..=75_000.0).contains(&r.commission));
            assert!((r.salary >= 75_000.0) == (r.commission == 0.0));
            assert!((20.0..=80.0).contains(&r.age));
            assert!(r.elevel < 5 && r.car < 20 && r.zipcode < 9);
            let k = (r.zipcode + 1) as f32;
            assert!((0.5 * k * 100_000.0..=1.5 * k * 100_000.0).contains(&r.hvalue));
            assert!((1.0..=30.0).contains(&r.hyears));
            assert!((0.0..=500_000.0).contains(&r.loan));
        }
    }

    #[test]
    fn f1_depends_only_on_age() {
        let mut r = sample_many(1, 2)[0];
        r.age = 30.0;
        assert!(ClassFunc::F1.classify(&r));
        r.age = 50.0;
        assert!(!ClassFunc::F1.classify(&r));
        r.age = 65.0;
        assert!(ClassFunc::F1.classify(&r));
    }

    #[test]
    fn f2_band_membership() {
        let mut r = sample_many(1, 3)[0];
        r.age = 30.0;
        r.salary = 60_000.0;
        assert!(ClassFunc::F2.classify(&r));
        r.salary = 120_000.0;
        assert!(!ClassFunc::F2.classify(&r));
        r.age = 70.0;
        r.salary = 50_000.0;
        assert!(ClassFunc::F2.classify(&r));
    }

    #[test]
    fn f7_linear_boundary() {
        let mut r = sample_many(1, 4)[0];
        r.salary = 100_000.0;
        r.commission = 0.0;
        r.loan = 0.0;
        assert!(ClassFunc::F7.classify(&r)); // 67k − 20k > 0
        r.loan = 500_000.0;
        assert!(!ClassFunc::F7.classify(&r)); // 67k − 100k − 20k < 0
    }

    #[test]
    fn f10_requires_old_house() {
        let mut r = sample_many(1, 5)[0];
        r.hyears = 10.0;
        assert!(!ClassFunc::F10.classify(&r));
        r.hyears = 30.0;
        r.hvalue = 500_000.0;
        r.loan = 0.0;
        assert!(ClassFunc::F10.classify(&r));
    }

    #[test]
    fn equity_zero_below_20_years() {
        let mut r = sample_many(1, 6)[0];
        r.hyears = 19.9;
        assert_eq!(r.equity(), 0.0);
        r.hyears = 25.0;
        r.hvalue = 100_000.0;
        assert!((r.equity() - 50_000.0).abs() < 1.0);
    }

    #[test]
    fn every_function_produces_both_classes() {
        let records = sample_many(5000, 7);
        for f in ClassFunc::ALL {
            let a = records.iter().filter(|r| f.classify(r)).count();
            assert!(
                a > 50 && a < records.len() - 50,
                "{f:?} degenerate: {a}/{}",
                records.len()
            );
        }
    }

    #[test]
    fn parse_roundtrip() {
        for f in ClassFunc::ALL {
            assert_eq!(ClassFunc::parse(&format!("{f:?}")), Some(f));
            assert_eq!(ClassFunc::parse(&format!("{f:?}").to_lowercase()), Some(f));
        }
        assert_eq!(ClassFunc::parse("F11"), None);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        assert_eq!(sample_many(50, 9), sample_many(50, 9));
        assert_ne!(sample_many(50, 9), sample_many(50, 10));
    }
}
