//! Minimal CSV import/export for generated datasets, so examples can be run
//! against files and external tools can consume the synthetic data.
//!
//! Format: a header row of attribute names plus a final `class` column;
//! continuous values are written with full `f32` round-trip precision.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use dtree::{AttrKind, Column, Dataset, Schema};

/// A malformed CSV input, located exactly: file (when read from one),
/// 1-based line, and 1-based column (when the problem is one field rather
/// than the whole row). Structured so callers can report or skip precisely
/// instead of grepping a string — and nothing here panics on bad input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsvError {
    /// Source file, when parsing came from [`read_csv`].
    pub file: Option<PathBuf>,
    /// 1-based line number (line 1 is the header).
    pub line: usize,
    /// 1-based column (field) number; `None` for whole-line problems.
    pub column: Option<usize>,
    /// What went wrong.
    pub msg: String,
}

impl CsvError {
    fn new(line: usize, column: Option<usize>, msg: impl Into<String>) -> CsvError {
        CsvError {
            file: None,
            line,
            column,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{}:", file.display())?;
        }
        write!(f, "line {}", self.line)?;
        if let Some(col) = self.column {
            write!(f, ", column {col}")?;
        }
        write!(f, ": {}", self.msg)
    }
}

impl std::error::Error for CsvError {}

/// Serialize a dataset to CSV text.
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    for attr in &data.schema.attrs {
        out.push_str(&attr.name);
        out.push(',');
    }
    out.push_str("class\n");
    for rid in 0..data.len() {
        for col in &data.columns {
            match col {
                Column::Continuous(v) => {
                    let _ = write!(out, "{}", v[rid]);
                }
                Column::Categorical(v) => {
                    let _ = write!(out, "{}", v[rid]);
                }
            }
            out.push(',');
        }
        let _ = writeln!(out, "{}", data.labels[rid]);
    }
    out
}

/// Write a dataset to a CSV file.
pub fn write_csv(data: &Dataset, path: &Path) -> io::Result<()> {
    fs::write(path, to_csv(data))
}

/// Parse CSV text against a known schema.
///
/// # Errors
/// Returns a [`CsvError`] naming the exact line (and field, where
/// applicable) for a malformed header, wrong column count, or an
/// unparsable value. Malformed input never panics.
pub fn from_csv(text: &str, schema: &Schema) -> Result<Dataset, CsvError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::new(1, None, "empty file"))?;
    let mut expect: Vec<&str> = schema.attrs.iter().map(|a| a.name.as_str()).collect();
    expect.push("class");
    let got: Vec<&str> = header.split(',').collect();
    if got != expect {
        return Err(CsvError::new(
            1,
            None,
            format!("header mismatch: expected {expect:?}, got {got:?}"),
        ));
    }

    let mut columns: Vec<Column> = schema
        .attrs
        .iter()
        .map(|a| match a.kind {
            AttrKind::Continuous => Column::Continuous(Vec::new()),
            AttrKind::Categorical { .. } => Column::Categorical(Vec::new()),
        })
        .collect();
    let mut labels = Vec::new();

    for (lineno, line) in lines.enumerate() {
        let ln = lineno + 2; // 1-based; line 1 was the header
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != schema.num_attrs() + 1 {
            return Err(CsvError::new(
                ln,
                None,
                format!(
                    "wrong field count: expected {}, got {}",
                    schema.num_attrs() + 1,
                    fields.len()
                ),
            ));
        }
        for (ci, (field, col)) in fields[..schema.num_attrs()]
            .iter()
            .zip(&mut columns)
            .enumerate()
        {
            match col {
                Column::Continuous(v) => v.push(field.parse::<f32>().map_err(|e| {
                    CsvError::new(ln, Some(ci + 1), format!("bad value {field:?}: {e}"))
                })?),
                Column::Categorical(v) => v.push(field.parse::<u32>().map_err(|e| {
                    CsvError::new(ln, Some(ci + 1), format!("bad value {field:?}: {e}"))
                })?),
            }
        }
        let class_field = fields[schema.num_attrs()];
        labels.push(class_field.parse::<u8>().map_err(|e| {
            CsvError::new(
                ln,
                Some(schema.num_attrs() + 1),
                format!("bad class {class_field:?}: {e}"),
            )
        })?);
    }
    Ok(Dataset::new(schema.clone(), columns, labels))
}

/// Read a dataset from a CSV file; errors carry the file path.
pub fn read_csv(path: &Path, schema: &Schema) -> Result<Dataset, CsvError> {
    let text = fs::read_to_string(path).map_err(|e| CsvError {
        file: Some(path.to_path_buf()),
        line: 0,
        column: None,
        msg: format!("read: {e}"),
    })?;
    from_csv(&text, schema).map_err(|mut e| {
        e.file = Some(path.to_path_buf());
        e
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quest::ClassFunc;
    use crate::{generate, GenConfig, Profile};

    fn small() -> Dataset {
        generate(&GenConfig {
            n: 64,
            func: ClassFunc::F2,
            noise: 0.0,
            seed: 11,
            profile: Profile::Paper7,
        })
    }

    #[test]
    fn csv_roundtrip_exact() {
        let d = small();
        let text = to_csv(&d);
        let back = from_csv(&text, &d.schema).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn csv_header_names() {
        let d = small();
        let text = to_csv(&d);
        let header = text.lines().next().unwrap();
        assert!(header.starts_with("salary,"));
        assert!(header.ends_with(",class"));
    }

    #[test]
    fn rejects_bad_header() {
        let d = small();
        let err = from_csv("a,b,class\n", &d.schema).unwrap_err();
        assert!(err.msg.contains("header mismatch"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_short_row() {
        let d = small();
        let mut text = to_csv(&d);
        text.push_str("1.0,2.0\n");
        let err = from_csv(&text, &d.schema).unwrap_err();
        assert!(err.msg.contains("wrong field count"), "{err}");
        assert_eq!(err.line, 66, "header + 64 data rows + the bad one");
        assert_eq!(err.column, None);
    }

    #[test]
    fn bad_field_is_located_by_line_and_column() {
        let d = small();
        let mut text = to_csv(&d);
        // Corrupt the 2nd field of the first data row.
        let good_row = text.lines().nth(1).unwrap().to_string();
        let fields: Vec<&str> = good_row.split(',').collect();
        let mut bad = fields.clone();
        bad[1] = "not-a-number";
        text = text.replacen(&good_row, &bad.join(","), 1);
        let err = from_csv(&text, &d.schema).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, Some(2));
        assert!(err.msg.contains("not-a-number"), "{err}");
        assert_eq!(err.file, None);
        // Bad class label points one past the attributes.
        let mut bad_class = fields.clone();
        let last = bad_class.len() - 1;
        bad_class[last] = "banana";
        let text2 = to_csv(&d).replacen(&good_row, &bad_class.join(","), 1);
        let err = from_csv(&text2, &d.schema).unwrap_err();
        assert_eq!(err.column, Some(d.schema.num_attrs() + 1));
        assert!(err.msg.contains("banana"), "{err}");
    }

    #[test]
    fn file_errors_carry_the_path() {
        let d = small();
        let dir = std::env::temp_dir().join("scalparc-csv-err-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        let mut text = to_csv(&d);
        text.push_str("oops\n");
        std::fs::write(&path, &text).unwrap();
        let err = read_csv(&path, &d.schema).unwrap_err();
        assert_eq!(err.file.as_deref(), Some(path.as_path()));
        let shown = err.to_string();
        assert!(
            shown.contains("bad.csv") && shown.contains("line 66"),
            "{shown}"
        );
        // Missing file: structured too, not a panic.
        let err = read_csv(&dir.join("absent.csv"), &d.schema).unwrap_err();
        assert!(err.msg.contains("read:"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_roundtrip() {
        let d = small();
        let dir = std::env::temp_dir().join("scalparc-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, &d.schema).unwrap();
        assert_eq!(d, back);
        let _ = std::fs::remove_file(&path);
    }
}
