//! Minimal CSV import/export for generated datasets, so examples can be run
//! against files and external tools can consume the synthetic data.
//!
//! Format: a header row of attribute names plus a final `class` column;
//! continuous values are written with full `f32` round-trip precision.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use dtree::{AttrKind, Column, Dataset, Schema};

/// Serialize a dataset to CSV text.
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    for attr in &data.schema.attrs {
        out.push_str(&attr.name);
        out.push(',');
    }
    out.push_str("class\n");
    for rid in 0..data.len() {
        for col in &data.columns {
            match col {
                Column::Continuous(v) => {
                    let _ = write!(out, "{}", v[rid]);
                }
                Column::Categorical(v) => {
                    let _ = write!(out, "{}", v[rid]);
                }
            }
            out.push(',');
        }
        let _ = writeln!(out, "{}", data.labels[rid]);
    }
    out
}

/// Write a dataset to a CSV file.
pub fn write_csv(data: &Dataset, path: &Path) -> io::Result<()> {
    fs::write(path, to_csv(data))
}

/// Parse CSV text against a known schema.
///
/// # Errors
/// Returns an error for a malformed header, wrong column count, or an
/// unparsable value.
pub fn from_csv(text: &str, schema: &Schema) -> Result<Dataset, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty file")?;
    let mut expect: Vec<&str> = schema.attrs.iter().map(|a| a.name.as_str()).collect();
    expect.push("class");
    let got: Vec<&str> = header.split(',').collect();
    if got != expect {
        return Err(format!("header mismatch: expected {expect:?}, got {got:?}"));
    }

    let mut columns: Vec<Column> = schema
        .attrs
        .iter()
        .map(|a| match a.kind {
            AttrKind::Continuous => Column::Continuous(Vec::new()),
            AttrKind::Categorical { .. } => Column::Categorical(Vec::new()),
        })
        .collect();
    let mut labels = Vec::new();

    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != schema.num_attrs() + 1 {
            return Err(format!("line {}: wrong field count", lineno + 2));
        }
        for (field, col) in fields[..schema.num_attrs()].iter().zip(&mut columns) {
            match col {
                Column::Continuous(v) => v.push(
                    field
                        .parse::<f32>()
                        .map_err(|e| format!("line {}: {e}", lineno + 2))?,
                ),
                Column::Categorical(v) => v.push(
                    field
                        .parse::<u32>()
                        .map_err(|e| format!("line {}: {e}", lineno + 2))?,
                ),
            }
        }
        labels.push(
            fields[schema.num_attrs()]
                .parse::<u8>()
                .map_err(|e| format!("line {}: {e}", lineno + 2))?,
        );
    }
    Ok(Dataset::new(schema.clone(), columns, labels))
}

/// Read a dataset from a CSV file.
pub fn read_csv(path: &Path, schema: &Schema) -> Result<Dataset, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_csv(&text, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quest::ClassFunc;
    use crate::{generate, GenConfig, Profile};

    fn small() -> Dataset {
        generate(&GenConfig {
            n: 64,
            func: ClassFunc::F2,
            noise: 0.0,
            seed: 11,
            profile: Profile::Paper7,
        })
    }

    #[test]
    fn csv_roundtrip_exact() {
        let d = small();
        let text = to_csv(&d);
        let back = from_csv(&text, &d.schema).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn csv_header_names() {
        let d = small();
        let text = to_csv(&d);
        let header = text.lines().next().unwrap();
        assert!(header.starts_with("salary,"));
        assert!(header.ends_with(",class"));
    }

    #[test]
    fn rejects_bad_header() {
        let d = small();
        let err = from_csv("a,b,class\n", &d.schema).unwrap_err();
        assert!(err.contains("header mismatch"));
    }

    #[test]
    fn rejects_short_row() {
        let d = small();
        let mut text = to_csv(&d);
        text.push_str("1.0,2.0\n");
        let err = from_csv(&text, &d.schema).unwrap_err();
        assert!(err.contains("wrong field count"));
    }

    #[test]
    fn file_roundtrip() {
        let d = small();
        let dir = std::env::temp_dir().join("scalparc-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, &d.schema).unwrap();
        assert_eq!(d, back);
        let _ = std::fs::remove_file(&path);
    }
}
