//! Time-varying concept drift over the per-index Quest stream.
//!
//! A [`DriftGen`] is the unbounded-stream counterpart of
//! [`crate::StreamingGen`]: record `i`'s *attributes* are drawn from exactly
//! the same per-index RNG stream (so a drifting stream differs from the
//! stable one in labels only), but the *labelling concept* is a function of
//! the record index — stream time. Three canonical drift shapes from the
//! stream-learning literature are provided:
//!
//! * **Abrupt flip** — the concept switches instantaneously at a boundary;
//! * **Gradual rotation** — over a transition window, each record is
//!   labelled by the new concept with probability ramping 0 → 1 (the
//!   per-record choice is its own deterministic per-index draw, so blocks
//!   remain boundary-invariant);
//! * **Recurring** — the concept alternates between two functions with a
//!   fixed period (seasonality).
//!
//! Like `StreamingGen`, generation is per-index: any block `[lo, hi)` can
//! be produced independently, in any order, and concatenating blocks
//! reproduces the stream exactly regardless of the boundaries — the
//! property the streaming-induction pipeline relies on to shard arriving
//! blocks across ranks and later re-cut the training window.

use dtree::{Dataset, Schema};

use crate::quest::{ClassFunc, QuestRecord};
use crate::{collect_block, mix, noise_flip, sample_indexed, GenConfig};

/// Salt of the gradual-transition per-record concept draw (its own stream,
/// so the ramp never disturbs attribute or noise draws).
const GRADUAL_SALT: u64 = 0x64AD_0A1D_6BAD_0A17;

/// How the labelling concept changes over the stream (record index = time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftKind {
    /// No drift: the base concept labels every record. A `Stable` drift
    /// stream is bit-identical to [`crate::StreamingGen`] on the same
    /// config.
    Stable,
    /// Abrupt flip: records `< at` are labelled by the base concept,
    /// records `>= at` by `to`.
    Abrupt {
        /// First record index labelled by the new concept.
        at: usize,
        /// The new concept.
        to: ClassFunc,
    },
    /// Gradual rotation: before `start` the base concept; from `end` on,
    /// `to`; in between record `i` is labelled by `to` with probability
    /// `(i − start) / (end − start)` (an independent per-index draw).
    Gradual {
        /// First index of the transition window.
        start: usize,
        /// One past the last index of the transition window (`> start`).
        end: usize,
        /// The new concept.
        to: ClassFunc,
    },
    /// Recurring concept: the stream alternates base / `alt` every
    /// `period` records, starting with the base.
    Recurring {
        /// Length of each concept episode (positive).
        period: usize,
        /// The alternate concept.
        alt: ClassFunc,
    },
}

/// Index-addressable Quest generator with a drifting labelling concept.
/// `cfg.func` is the *base* concept; `kind` describes how it moves.
#[derive(Clone, Copy, Debug)]
pub struct DriftGen {
    cfg: GenConfig,
    kind: DriftKind,
}

impl DriftGen {
    /// A drifting stream over the virtual dataset described by `cfg`.
    pub fn new(cfg: GenConfig, kind: DriftKind) -> Self {
        if let DriftKind::Gradual { start, end, .. } = kind {
            assert!(end > start, "gradual window must be non-empty");
        }
        if let DriftKind::Recurring { period, .. } = kind {
            assert!(period > 0, "recurring period must be positive");
        }
        DriftGen { cfg, kind }
    }

    /// Total number of records in the virtual stream.
    pub fn len(&self) -> usize {
        self.cfg.n
    }

    /// True when the virtual stream is empty.
    pub fn is_empty(&self) -> bool {
        self.cfg.n == 0
    }

    /// The schema of every produced block.
    pub fn schema(&self) -> Schema {
        self.cfg.profile.schema()
    }

    /// The drift shape of this stream.
    pub fn kind(&self) -> DriftKind {
        self.kind
    }

    /// The concept labelling record `i`. For [`DriftKind::Gradual`] this
    /// resolves the per-record transition draw, so it is the exact concept
    /// `record(i)` used (before label noise).
    pub fn concept_at(&self, i: usize) -> ClassFunc {
        let base = self.cfg.func;
        match self.kind {
            DriftKind::Stable => base,
            DriftKind::Abrupt { at, to } => {
                if i < at {
                    base
                } else {
                    to
                }
            }
            DriftKind::Gradual { start, end, to } => {
                if i < start {
                    base
                } else if i >= end {
                    to
                } else {
                    // 53-bit uniform in [0, 1) from the per-index draw.
                    let z = mix(self.cfg.seed ^ GRADUAL_SALT, i as u64);
                    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
                    let frac = (i - start) as f64 / (end - start) as f64;
                    if u < frac {
                        to
                    } else {
                        base
                    }
                }
            }
            DriftKind::Recurring { period, alt } => {
                if (i / period).is_multiple_of(2) {
                    base
                } else {
                    alt
                }
            }
        }
    }

    /// Sample record `i` and its (possibly noise-flipped) label under the
    /// concept active at index `i`.
    pub fn record(&self, i: usize) -> (QuestRecord, u8) {
        debug_assert!(i < self.cfg.n, "index {i} out of {}", self.cfg.n);
        let r = sample_indexed(self.cfg.seed, i);
        let mut class = u8::from(!self.concept_at(i).classify(&r));
        if noise_flip(&self.cfg, i) {
            class ^= 1;
        }
        (r, class)
    }

    /// Materialize records `[lo, hi)` as a dataset (clamped to the end).
    pub fn block(&self, lo: usize, hi: usize) -> Dataset {
        let lo = lo.min(self.cfg.n);
        let hi = hi.min(self.cfg.n).max(lo);
        collect_block(self.cfg.profile, hi - lo, (lo..hi).map(|i| self.record(i)))
    }

    /// Iterate the stream as consecutive blocks of up to `chunk` records.
    pub fn chunks(&self, chunk: usize) -> impl Iterator<Item = Dataset> + '_ {
        assert!(chunk > 0, "chunk must be positive");
        let n = self.cfg.n;
        (0..n.div_ceil(chunk)).map(move |b| self.block(b * chunk, (b + 1) * chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamingGen;

    fn cfg(n: usize, seed: u64) -> GenConfig {
        GenConfig::paper(n, seed)
    }

    #[test]
    fn stable_drift_is_bit_identical_to_streaming_gen() {
        let c = cfg(500, 31);
        let stable = DriftGen::new(c, DriftKind::Stable).block(0, 500);
        let plain = StreamingGen::new(c).block(0, 500);
        assert_eq!(stable, plain);
    }

    #[test]
    fn drift_moves_labels_only() {
        let c = cfg(800, 33);
        let plain = StreamingGen::new(c).block(0, 800);
        for kind in [
            DriftKind::Abrupt {
                at: 400,
                to: ClassFunc::F6,
            },
            DriftKind::Gradual {
                start: 200,
                end: 600,
                to: ClassFunc::F6,
            },
            DriftKind::Recurring {
                period: 100,
                alt: ClassFunc::F6,
            },
        ] {
            let d = DriftGen::new(c, kind).block(0, 800);
            assert_eq!(d.columns, plain.columns, "{kind:?} shifted attributes");
        }
    }

    #[test]
    fn abrupt_flip_switches_exactly_at_the_boundary() {
        let c = cfg(600, 35);
        let gen = DriftGen::new(
            c,
            DriftKind::Abrupt {
                at: 300,
                to: ClassFunc::F6,
            },
        );
        for i in (0..600).step_by(7) {
            let (r, class) = gen.record(i);
            let want = if i < 300 {
                ClassFunc::F2
            } else {
                ClassFunc::F6
            };
            assert_eq!(class, u8::from(!want.classify(&r)), "record {i}");
            assert_eq!(gen.concept_at(i), want);
        }
    }

    #[test]
    fn gradual_rotation_ramps_monotonically() {
        let c = cfg(9_000, 37);
        let gen = DriftGen::new(
            c,
            DriftKind::Gradual {
                start: 3_000,
                end: 6_000,
                to: ClassFunc::F6,
            },
        );
        let frac_new = |lo: usize, hi: usize| {
            (lo..hi)
                .filter(|&i| gen.concept_at(i) == ClassFunc::F6)
                .count() as f64
                / (hi - lo) as f64
        };
        assert_eq!(frac_new(0, 3_000), 0.0, "before the window: base only");
        assert_eq!(frac_new(6_000, 9_000), 1.0, "after the window: new only");
        let early = frac_new(3_000, 4_000);
        let late = frac_new(5_000, 6_000);
        assert!(early < 0.35, "early window should be mostly base: {early}");
        assert!(late > 0.65, "late window should be mostly new: {late}");
    }

    #[test]
    fn recurring_concept_alternates_with_period() {
        let gen = DriftGen::new(
            cfg(1_000, 39),
            DriftKind::Recurring {
                period: 250,
                alt: ClassFunc::F6,
            },
        );
        assert_eq!(gen.concept_at(0), ClassFunc::F2);
        assert_eq!(gen.concept_at(249), ClassFunc::F2);
        assert_eq!(gen.concept_at(250), ClassFunc::F6);
        assert_eq!(gen.concept_at(499), ClassFunc::F6);
        assert_eq!(gen.concept_at(500), ClassFunc::F2);
        assert_eq!(gen.concept_at(750), ClassFunc::F6);
    }

    #[test]
    fn drift_blocks_are_boundary_invariant() {
        let c = cfg(700, 41);
        let gen = DriftGen::new(
            c,
            DriftKind::Gradual {
                start: 100,
                end: 500,
                to: ClassFunc::F6,
            },
        );
        let whole = gen.block(0, 700);
        // Odd, interleaved, out-of-order requests agree with the whole.
        for (lo, hi) in [(0, 1), (13, 140), (139, 500), (500, 700), (699, 700)] {
            let got = gen.block(lo, hi);
            let want = whole.slice(lo, hi);
            assert_eq!(got, want, "block [{lo}, {hi})");
        }
    }

    #[test]
    fn drift_is_deterministic_and_seed_sensitive() {
        let kind = DriftKind::Abrupt {
            at: 50,
            to: ClassFunc::F6,
        };
        let a = DriftGen::new(cfg(200, 1), kind).block(0, 200);
        let b = DriftGen::new(cfg(200, 1), kind).block(0, 200);
        let c = DriftGen::new(cfg(200, 2), kind).block(0, 200);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
