//! Anchor crate for the runnable examples in the repository-root
//! `examples/` directory. See each example's module docs:
//!
//! * `quickstart` — generate data, induce with ScalParC, inspect the model;
//! * `loan_approval` — full pipeline with noise, pruning, confusion matrix;
//! * `cluster_scaling` — same algorithm under two machine cost models;
//! * `csv_workflow` — file round-trip and serial/parallel agreement;
//! * `parallel_hashing` — the hashing paradigm reused outside classification.
