//! `sortp` — parallel sorting over the `mpsim` machine.
//!
//! ScalParC's Presort phase uses "the scalable parallel sample sort
//! algorithm followed by a parallel shift operation, to sort all the
//! continuous attributes" (paper §4, citing Kumar et al., *Introduction to
//! Parallel Computing*). This crate provides both:
//!
//! * [`sample_sort`] — parallel sorting by regular sampling: local sort,
//!   regular local samples, globally-agreed splitters, one all-to-all
//!   personalized exchange, local merge;
//! * [`parallel_shift`] — rebalancing of a globally-sorted, arbitrarily
//!   distributed sequence onto exact `⌈N/p⌉` blocks per rank, so that after
//!   Presort the distributed attribute lists have the even block sizes the
//!   paper's load-balancing discussion (§3.1) assumes.
//!
//! Ties: callers that need a total order (the attribute lists sort by
//! `(value, rid)`) must fold the tiebreak into the comparator; the sort
//! itself is deterministic for any total-order comparator.

use std::cmp::Ordering;

use mpsim::Comm;

/// Globally sort a distributed sequence and rebalance it to `⌈N/p⌉` blocks.
///
/// Collective. Each rank passes its local elements (any sizes, including
/// empty); afterwards rank `i` holds elements `[i·b, min((i+1)·b, N))` of the
/// global sorted order, `b = ⌈N/p⌉`. The comparator must be a total order
/// consistent across ranks.
pub fn sample_sort<T, C>(comm: &mut Comm, local: Vec<T>, cmp: C) -> Vec<T>
where
    T: Clone + Send + Sync + 'static,
    C: Fn(&T, &T) -> Ordering + Copy,
{
    let sorted = sample_sort_unbalanced(comm, local, cmp);
    parallel_shift(comm, sorted)
}

/// Parallel sample sort **without** the final shift: the result is globally
/// sorted (rank `i`'s last element ≤ rank `i+1`'s first) but block sizes
/// depend on where the splitters fall.
pub fn sample_sort_unbalanced<T, C>(comm: &mut Comm, mut local: Vec<T>, cmp: C) -> Vec<T>
where
    T: Clone + Send + Sync + 'static,
    C: Fn(&T, &T) -> Ordering + Copy,
{
    let p = comm.size();
    comm.phase_begin("sample_sort", 0);
    local.sort_unstable_by(cmp);
    if p == 1 {
        comm.phase_end(); // sample_sort (single rank: local sort only)
        return local;
    }

    // Regular sampling: p−1 local samples at positions (len·i)/p.
    let samples: Vec<T> = (1..p)
        .filter_map(|i| {
            if local.is_empty() {
                None
            } else {
                Some(local[(local.len() * i) / p].clone())
            }
        })
        .collect();

    // Gather all samples everywhere and agree on p−1 splitters.
    let mut all_samples = comm.allgatherv(samples);
    all_samples.sort_unstable_by(cmp);
    let splitters: Vec<T> = (1..p)
        .filter_map(|i| {
            if all_samples.is_empty() {
                None
            } else {
                Some(all_samples[(all_samples.len() * i) / p].clone())
            }
        })
        .collect();

    // Bucket by splitter: element x goes to bucket #{splitters ≤ x}. Since
    // `local` is sorted, every bucket is a contiguous range of it — the
    // flat exchange needs only the per-destination counts from binary
    // searches, and `local` itself is the send buffer (no per-bucket copy).
    let mut counts = vec![0usize; p];
    let mut start = 0usize;
    for (d, s) in splitters.iter().enumerate() {
        // First index whose element is > s.
        let end = start + local[start..].partition_point(|x| cmp(x, s) != Ordering::Greater);
        counts[d] = end - start;
        start = end;
    }
    counts[splitters.len()] = local.len() - start;
    // Degenerate splitter sets (tiny inputs) leave trailing counts zero.

    // One all-to-all personalized exchange, then merge the received runs.
    // pdqsort detects the pre-sorted runs, so concatenate-and-sort performs
    // like a k-way merge without the bookkeeping.
    let (mut merged, _) = comm.alltoallv_flat(local, &counts);
    merged.sort_unstable_by(cmp);
    comm.phase_end(); // sample_sort
    merged
}

/// Rebalance a globally-sorted distributed sequence so rank `i` holds the
/// contiguous block `[i·b, min((i+1)·b, N))`, `b = ⌈N/p⌉` — the paper's
/// "parallel shift", realized as one all-to-all personalized exchange over
/// contiguous ranges.
pub fn parallel_shift<T>(comm: &mut Comm, local: Vec<T>) -> Vec<T>
where
    T: Clone + Send + Sync + 'static,
{
    let p = comm.size();
    if p == 1 {
        return local;
    }
    comm.phase_begin("parallel_shift", 0);
    // Global offset of my run and total size.
    let my_len = local.len() as u64;
    let offset = comm.scan_exclusive(my_len, 0u64, |a, b| *a += *b);
    let total = comm.allreduce(my_len, |a, b| *a += *b);
    let block = total.div_ceil(p as u64).max(1);

    // My run covers global indices [offset, offset + my_len); each rank's
    // destination block is a contiguous sub-range of it (the last rank
    // absorbs the tail), so the flat exchange needs only the overlap sizes
    // and `local` itself is the send buffer.
    let hi_bound = offset + my_len;
    let mut counts = vec![0usize; p];
    for (d, cnt) in counts.iter_mut().enumerate() {
        let lo = (d as u64 * block).clamp(offset, hi_bound);
        let hi = if d == p - 1 {
            hi_bound
        } else {
            ((d as u64 + 1) * block).clamp(offset, hi_bound)
        };
        *cnt = (hi - lo) as usize;
    }
    // Received parts arrive in rank order = ascending global-index order.
    let out = comm.alltoallv_flat(local, &counts).0;
    comm.phase_end(); // parallel_shift
    out
}

/// Verify a distributed sequence is globally sorted under `cmp`.
/// Collective; every rank receives the same verdict.
pub fn is_globally_sorted<T, C>(comm: &mut Comm, local: &[T], cmp: C) -> bool
where
    T: Clone + Send + Sync + 'static,
    C: Fn(&T, &T) -> Ordering,
{
    let locally = local
        .windows(2)
        .all(|w| cmp(&w[0], &w[1]) != Ordering::Greater);
    // Boundary check via allgather of (first, last).
    let ends: Vec<Option<(T, T)>> = comm.allgather(
        local
            .first()
            .map(|f| (f.clone(), local.last().unwrap().clone())),
    );
    let mut boundary_ok = true;
    let mut prev_last: Option<T> = None;
    for pair in ends.into_iter().flatten() {
        if let Some(pl) = &prev_last {
            if cmp(pl, &pair.0) == Ordering::Greater {
                boundary_ok = false;
            }
        }
        prev_last = Some(pair.1);
    }
    let ok = locally && boundary_ok;
    comm.allreduce(u8::from(ok), |a, b| *a = (*a).min(*b)) == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::run_simple;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_sort(p: usize, sizes: &[usize], seed: u64) {
        assert_eq!(sizes.len(), p);
        let sizes = sizes.to_vec();
        let outs = run_simple(p, move |c| {
            let mut rng = StdRng::seed_from_u64(seed + c.rank() as u64);
            let local: Vec<u32> = (0..sizes[c.rank()])
                .map(|_| rng.gen_range(0..1000))
                .collect();
            let mine = local.clone();
            let sorted = sample_sort(c, local, |a, b| a.cmp(b));
            assert!(is_globally_sorted(c, &sorted, |a, b| a.cmp(b)));
            (mine, sorted)
        });
        // Multiset preserved and globally ordered.
        let mut input: Vec<u32> = outs.iter().flat_map(|(i, _)| i.clone()).collect();
        let output: Vec<u32> = outs.iter().flat_map(|(_, s)| s.clone()).collect();
        input.sort_unstable();
        assert_eq!(input, output, "global order wrong");
        // Balanced blocks.
        let total: usize = outs.iter().map(|(_, s)| s.len()).sum();
        let block = total.div_ceil(p).max(1);
        for (r, (_, s)) in outs.iter().enumerate() {
            let lo = (r * block).min(total);
            let hi = ((r + 1) * block).min(total);
            assert_eq!(s.len(), hi - lo, "rank {r} not balanced");
        }
    }

    #[test]
    fn sorts_balanced_inputs() {
        check_sort(4, &[100, 100, 100, 100], 1);
    }

    #[test]
    fn sorts_skewed_inputs() {
        check_sort(4, &[400, 0, 3, 50], 2);
    }

    #[test]
    fn sorts_tiny_inputs() {
        check_sort(8, &[1, 0, 2, 0, 1, 0, 0, 1], 3);
    }

    #[test]
    fn sorts_single_rank() {
        check_sort(1, &[257], 4);
    }

    #[test]
    fn sorts_empty_everything() {
        check_sort(3, &[0, 0, 0], 5);
    }

    #[test]
    fn sorts_larger_machine() {
        check_sort(16, &[64; 16], 6);
    }

    #[test]
    fn sorts_many_duplicates() {
        let outs = run_simple(4, |c| {
            let local: Vec<u32> = vec![7; 50];
            sample_sort(c, local, |a, b| a.cmp(b))
        });
        let total: usize = outs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 200);
        assert!(outs.iter().all(|s| s.iter().all(|&x| x == 7)));
        assert_eq!(outs[0].len(), 50); // shift rebalanced the pile-up
    }

    #[test]
    fn float_pairs_sort_with_total_cmp() {
        let outs = run_simple(3, |c| {
            let mut rng = StdRng::seed_from_u64(77 + c.rank() as u64);
            let local: Vec<(f32, u32)> = (0..80)
                .map(|i| (rng.gen_range(0.0..10.0f32), (c.rank() * 1000 + i) as u32))
                .collect();
            let sorted = sample_sort(c, local, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            assert!(is_globally_sorted(c, &sorted, |a, b| a
                .0
                .total_cmp(&b.0)
                .then(a.1.cmp(&b.1))));
            sorted
        });
        let all: Vec<(f32, u32)> = outs.into_iter().flatten().collect();
        assert_eq!(all.len(), 240);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn matches_serial_sort_exactly() {
        let p = 5;
        let outs = run_simple(p, move |c| {
            let mut rng = StdRng::seed_from_u64(123 + c.rank() as u64);
            let local: Vec<u64> = (0..100).map(|_| rng.gen_range(0..10_000)).collect();
            let mine = local.clone();
            (mine, sample_sort(c, local, |a, b| a.cmp(b)))
        });
        let mut serial: Vec<u64> = outs.iter().flat_map(|(i, _)| i.clone()).collect();
        serial.sort_unstable();
        let parallel: Vec<u64> = outs.iter().flat_map(|(_, s)| s.clone()).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn shift_rebalances_without_reordering() {
        let outs = run_simple(4, |c| {
            // Globally sorted but wildly unbalanced: rank 0 has everything.
            let local: Vec<u32> = if c.rank() == 0 {
                (0..100).collect()
            } else {
                vec![]
            };
            parallel_shift(c, local)
        });
        for (r, s) in outs.iter().enumerate() {
            let want: Vec<u32> = (r as u32 * 25..(r as u32 + 1) * 25).collect();
            assert_eq!(*s, want, "rank {r}");
        }
    }

    #[test]
    fn shift_handles_non_divisible_sizes() {
        let outs = run_simple(4, |c| {
            let local: Vec<u32> = if c.rank() == 1 {
                (0..10).collect()
            } else {
                vec![]
            };
            parallel_shift(c, local)
        });
        // N=10, p=4 → block 3: sizes 3,3,3,1.
        assert_eq!(
            outs.iter().map(|s| s.len()).collect::<Vec<_>>(),
            vec![3, 3, 3, 1]
        );
        let all: Vec<u32> = outs.into_iter().flatten().collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn unbalanced_variant_is_sorted() {
        let outs = run_simple(4, |c| {
            let mut rng = StdRng::seed_from_u64(9 + c.rank() as u64);
            let local: Vec<u32> = (0..64).map(|_| rng.gen_range(0..100)).collect();
            let sorted = sample_sort_unbalanced(c, local, |a, b| a.cmp(b));
            assert!(is_globally_sorted(c, &sorted, |a, b| a.cmp(b)));
            sorted
        });
        let total: usize = outs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn detects_unsorted_sequences() {
        let verdicts = run_simple(2, |c| {
            let local: Vec<u32> = if c.rank() == 0 {
                vec![5, 6]
            } else {
                vec![1, 2]
            };
            is_globally_sorted(c, &local, |a, b| a.cmp(b))
        });
        assert!(verdicts.iter().all(|&v| !v));
    }
}
