//! Compiled flat decision tree: a breadth-first struct-of-arrays node
//! layout with a batched, level-synchronous scoring kernel.
//!
//! [`crate::tree::DecisionTree`] is an induction-friendly arena: every node
//! carries its histogram, an `Option<SplitTest>`, and a `Vec` of child ids,
//! so one prediction step costs two dependent pointer loads plus an enum
//! match. That is fine for training-time bookkeeping and hopeless for
//! serving. [`FlatTree`] is the inference-friendly form of the same tree:
//!
//! * nodes are renumbered **breadth-first**, so all nodes of one depth are
//!   contiguous and a node's children are contiguous (`child_base + c`);
//! * per-node state lives in **parallel arrays** (`kind`/`attr`/`threshold`/
//!   `child_base`/`leaf_class`), four bytes or one byte per field, with the
//!   rare categorical-subset masks in a side table;
//! * [`FlatTree::predict_batch`] steps a whole batch **level-synchronously**:
//!   the active records are kept grouped by node, each group is routed with
//!   one branch on the node kind and one attribute column, and children are
//!   emitted in child order, which keeps the next level grouped and the
//!   node arrays streaming in ascending order.
//!
//! The kernel is exact: for every record it produces the class that
//! [`DecisionTree::predict`] produces (the per-record walk stays as the
//! reference oracle; a workspace proptest pins the equivalence).

use crate::data::{AttrKind, Dataset, Schema};
use crate::tree::{DecisionTree, SplitTest};

/// Node kind tag of one flat node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlatKind {
    /// Terminal node; `leaf_class` holds the prediction.
    Leaf = 0,
    /// `A < threshold` binary test.
    Continuous = 1,
    /// m-way categorical test (child = attribute value).
    Categorical = 2,
    /// Binary subset test; `aux` indexes the mask side table.
    Subset = 3,
}

/// A decision tree compiled for batched inference: breadth-first
/// struct-of-arrays node storage. Build one with [`FlatTree::compile`].
#[derive(Clone, Debug, PartialEq)]
pub struct FlatTree {
    schema: Schema,
    /// Node kind tags, breadth-first order; node 0 is the root.
    kind: Vec<FlatKind>,
    /// Attribute tested at each internal node (0 for leaves).
    attr: Vec<u32>,
    /// `A < threshold` threshold for continuous nodes (0.0 otherwise).
    threshold: Vec<f32>,
    /// Subset nodes: index into `masks`. Other kinds: 0.
    aux: Vec<u32>,
    /// Flat id of the first child (children are contiguous; 0 for leaves).
    child_base: Vec<u32>,
    /// Majority class (the prediction at leaves).
    leaf_class: Vec<u8>,
    /// Side table of categorical-subset left masks.
    masks: Vec<u64>,
}

impl FlatTree {
    /// The breadth-first renumbering [`FlatTree::compile`] applies:
    /// `order[i]` is the `DecisionTree` node id of flat node `i`. Exposed so
    /// consumers that carry per-node side data (e.g. a forest's per-leaf
    /// class distributions) can align it with the flat ids the prediction
    /// kernels report. Panics if the arena is not a tree (a shared or
    /// cyclic child would be visited twice).
    pub fn bfs_order(tree: &DecisionTree) -> Vec<u32> {
        let n = tree.nodes.len();
        // Popping in push order makes each node's children contiguous,
        // starting at the queue length at the time the parent is visited.
        let mut order: Vec<u32> = vec![0];
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut head = 0usize;
        while head < order.len() {
            let node = &tree.nodes[order[head] as usize];
            head += 1;
            for &c in &node.children {
                assert!(
                    !std::mem::replace(&mut seen[c as usize], true),
                    "node arena is not a tree: node {c} is reachable twice"
                );
                order.push(c);
            }
        }
        order
    }

    /// Compile an induced tree into the flat layout. Panics if the arena is
    /// not a tree (a shared or cyclic child would be visited twice).
    pub fn compile(tree: &DecisionTree) -> FlatTree {
        let n = tree.nodes.len();
        let mut flat = FlatTree {
            schema: tree.schema.clone(),
            kind: Vec::with_capacity(n),
            attr: Vec::with_capacity(n),
            threshold: Vec::with_capacity(n),
            aux: Vec::with_capacity(n),
            child_base: Vec::with_capacity(n),
            leaf_class: Vec::with_capacity(n),
            masks: Vec::new(),
        };
        let order = Self::bfs_order(tree);
        // Children are appended to the BFS queue in visit order, so flat
        // node `i`'s children start one past all earlier nodes' children.
        let mut next_child = 1u32;
        for &old in &order {
            let node = &tree.nodes[old as usize];
            let child_base = next_child;
            next_child += node.children.len() as u32;
            let (kind, attr, threshold, aux) = match node.test {
                None => (FlatKind::Leaf, 0, 0.0, 0),
                Some(SplitTest::Continuous { attr, threshold }) => {
                    (FlatKind::Continuous, attr as u32, threshold, 0)
                }
                Some(SplitTest::Categorical { attr }) => {
                    (FlatKind::Categorical, attr as u32, 0.0, 0)
                }
                Some(SplitTest::CategoricalSubset { attr, left_mask }) => {
                    flat.masks.push(left_mask);
                    (
                        FlatKind::Subset,
                        attr as u32,
                        0.0,
                        (flat.masks.len() - 1) as u32,
                    )
                }
            };
            flat.kind.push(kind);
            flat.attr.push(attr);
            flat.threshold.push(threshold);
            flat.aux.push(aux);
            flat.child_base.push(child_base);
            flat.leaf_class.push(node.majority);
        }
        flat
    }

    /// Flat id of the leaf that classifies record `rid` (the terminal node
    /// of the same walk [`FlatTree::predict`] takes).
    pub fn predict_leaf(&self, data: &Dataset, rid: usize) -> u32 {
        let mut i = 0usize;
        loop {
            let c = match self.kind[i] {
                FlatKind::Leaf => return i as u32,
                FlatKind::Continuous => usize::from(
                    data.continuous_value(self.attr[i] as usize, rid) >= self.threshold[i],
                ),
                FlatKind::Categorical => {
                    data.categorical_value(self.attr[i] as usize, rid) as usize
                }
                FlatKind::Subset => {
                    let mask = self.masks[self.aux[i] as usize];
                    let v = data.categorical_value(self.attr[i] as usize, rid);
                    usize::from((mask >> v) & 1 == 0)
                }
            };
            i = self.child_base[i] as usize + c;
        }
    }

    /// The schema the tree was trained under.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// True only for a tree with no nodes (never produced by `compile`).
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// Majority class of node `i` — the prediction answered at `i` when it
    /// is a leaf. Consumers carrying per-node side data (e.g. streaming
    /// leaf statistics) read it to compare arriving labels against what
    /// the model would answer.
    pub fn node_class(&self, i: usize) -> u8 {
        self.leaf_class[i]
    }

    /// Heap bytes of the node arrays and mask table (for memory
    /// accounting of per-rank replicas in distributed scoring).
    pub fn heap_bytes(&self) -> u64 {
        (self.kind.len() * (1 + 4 + 4 + 4 + 4 + 1) + self.masks.len() * 8) as u64
    }

    /// Arity of node `i` under the schema (0 for leaves).
    fn arity(&self, i: usize) -> usize {
        match self.kind[i] {
            FlatKind::Leaf => 0,
            FlatKind::Continuous | FlatKind::Subset => 2,
            FlatKind::Categorical => match self.schema.attrs[self.attr[i] as usize].kind {
                AttrKind::Categorical { cardinality } => cardinality as usize,
                AttrKind::Continuous => unreachable!("categorical test on continuous attribute"),
            },
        }
    }

    /// Predict one record by flat per-node descent (the low-latency
    /// single-record path; batches should use [`FlatTree::predict_batch`]).
    pub fn predict(&self, data: &Dataset, rid: usize) -> u8 {
        let mut i = 0usize;
        loop {
            let c = match self.kind[i] {
                FlatKind::Leaf => return self.leaf_class[i],
                FlatKind::Continuous => usize::from(
                    data.continuous_value(self.attr[i] as usize, rid) >= self.threshold[i],
                ),
                FlatKind::Categorical => {
                    data.categorical_value(self.attr[i] as usize, rid) as usize
                }
                FlatKind::Subset => {
                    let mask = self.masks[self.aux[i] as usize];
                    let v = data.categorical_value(self.attr[i] as usize, rid);
                    usize::from((mask >> v) & 1 == 0)
                }
            };
            i = self.child_base[i] as usize + c;
        }
    }

    /// Score every record of `data` into `out` (`out[rid]` = predicted
    /// class). Batched equivalent of calling [`FlatTree::predict`] per
    /// record.
    pub fn predict_batch(&self, data: &Dataset, out: &mut [u8]) {
        assert_eq!(out.len(), data.len(), "output slice must cover the batch");
        self.predict_range(data, 0, data.len(), out);
    }

    /// Score the contiguous record range `[lo, hi)` of `data`;
    /// `out[i]` receives the prediction of record `lo + i`. This is the
    /// kernel the serving harness and the distributed scorer batch over.
    ///
    /// The batch advances one tree level per pass. Records are kept grouped
    /// by their current node, nodes in ascending (= breadth-first) order, so
    /// each pass streams the node arrays forward; each group is routed with
    /// a single branch on the node kind and a per-child counting pass that
    /// emits the children still grouped and ordered.
    pub fn predict_range(&self, data: &Dataset, lo: usize, hi: usize, out: &mut [u8]) {
        assert!(lo <= hi && hi <= data.len(), "record range out of bounds");
        assert_eq!(out.len(), hi - lo, "output slice must cover the range");
        if self.kind[0] == FlatKind::Leaf {
            out.fill(self.leaf_class[0]);
            return;
        }
        self.descend_range(data, lo, hi, |node, run| {
            let class = self.leaf_class[node];
            for &r in run {
                out[r as usize - lo] = class;
            }
        });
    }

    /// Like [`FlatTree::predict_range`], but record the **flat id of the
    /// terminal leaf** of each record instead of its class (`out[i]` = leaf
    /// id of record `lo + i`). Consumers that need more than the majority
    /// class — e.g. a forest averaging per-leaf class distributions — key
    /// their side tables by these ids (aligned via [`FlatTree::bfs_order`]).
    pub fn predict_leaves_range(&self, data: &Dataset, lo: usize, hi: usize, out: &mut [u32]) {
        assert!(lo <= hi && hi <= data.len(), "record range out of bounds");
        assert_eq!(out.len(), hi - lo, "output slice must cover the range");
        if self.kind[0] == FlatKind::Leaf {
            out.fill(0);
            return;
        }
        self.descend_range(data, lo, hi, |node, run| {
            for &r in run {
                out[r as usize - lo] = node as u32;
            }
        });
    }

    /// The level-synchronous descent shared by the batched kernels: advance
    /// records `[lo, hi)` one tree level per pass and hand every run of
    /// records that reached a leaf to `on_leaf(leaf_id, record_ids)`.
    fn descend_range(
        &self,
        data: &Dataset,
        lo: usize,
        hi: usize,
        mut on_leaf: impl FnMut(usize, &[u32]),
    ) {
        if lo == hi {
            return;
        }
        let n = hi - lo;
        // Active set: records and their current nodes, parallel, grouped by
        // node with nodes ascending.
        let mut recs: Vec<u32> = (lo as u32..hi as u32).collect();
        let mut nodes: Vec<u32> = vec![0; n];
        let mut next_recs: Vec<u32> = Vec::with_capacity(n);
        let mut next_nodes: Vec<u32> = Vec::with_capacity(n);
        let mut offsets: Vec<u32> = Vec::new(); // per-child placement scratch

        while !recs.is_empty() {
            next_recs.clear();
            next_nodes.clear();
            let mut i = 0usize;
            while i < recs.len() {
                let node = nodes[i];
                let mut j = i + 1;
                while j < recs.len() && nodes[j] == node {
                    j += 1;
                }
                let node = node as usize;
                let run = &recs[i..j];
                i = j;
                if self.kind[node] == FlatKind::Leaf {
                    on_leaf(node, run);
                    continue;
                }
                let base = self.child_base[node];
                let arity = self.arity(node);
                let start = next_recs.len();
                next_recs.resize(start + run.len(), 0);
                next_nodes.resize(start + run.len(), 0);
                offsets.clear();
                offsets.resize(arity, 0);
                // Count, prefix, place: two routing passes cost one extra
                // streaming read of the run's column values and keep the
                // next level grouped without per-child buffers.
                match self.kind[node] {
                    FlatKind::Continuous => {
                        let col = data.columns[self.attr[node] as usize].as_continuous();
                        let th = self.threshold[node];
                        for &r in run {
                            offsets[usize::from(col[r as usize] >= th)] += 1;
                        }
                        exclusive_prefix(&mut offsets);
                        for &r in run {
                            let c = usize::from(col[r as usize] >= th);
                            let at = start + offsets[c] as usize;
                            offsets[c] += 1;
                            next_recs[at] = r;
                            next_nodes[at] = base + c as u32;
                        }
                    }
                    FlatKind::Categorical => {
                        let col = data.columns[self.attr[node] as usize].as_categorical();
                        for &r in run {
                            offsets[col[r as usize] as usize] += 1;
                        }
                        exclusive_prefix(&mut offsets);
                        for &r in run {
                            let c = col[r as usize] as usize;
                            let at = start + offsets[c] as usize;
                            offsets[c] += 1;
                            next_recs[at] = r;
                            next_nodes[at] = base + c as u32;
                        }
                    }
                    FlatKind::Subset => {
                        let col = data.columns[self.attr[node] as usize].as_categorical();
                        let mask = self.masks[self.aux[node] as usize];
                        for &r in run {
                            offsets[usize::from((mask >> col[r as usize]) & 1 == 0)] += 1;
                        }
                        exclusive_prefix(&mut offsets);
                        for &r in run {
                            let c = usize::from((mask >> col[r as usize]) & 1 == 0);
                            let at = start + offsets[c] as usize;
                            offsets[c] += 1;
                            next_recs[at] = r;
                            next_nodes[at] = base + c as u32;
                        }
                    }
                    FlatKind::Leaf => unreachable!(),
                }
            }
            std::mem::swap(&mut recs, &mut next_recs);
            std::mem::swap(&mut nodes, &mut next_nodes);
        }
    }

    /// Fraction of records whose label the tree predicts, through the
    /// batched kernel.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let mut out = vec![0u8; data.len()];
        self.predict_batch(data, &mut out);
        let hits = out.iter().zip(&data.labels).filter(|(p, l)| p == l).count();
        hits as f64 / data.len() as f64
    }
}

/// In-place exclusive prefix sum of a small counts vector.
fn exclusive_prefix(counts: &mut [u32]) {
    let mut acc = 0u32;
    for c in counts.iter_mut() {
        let here = *c;
        *c = acc;
        acc += here;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{AttrDef, Column};
    use crate::tree::Node;

    fn schema() -> Schema {
        Schema::new(
            vec![AttrDef::continuous("x"), AttrDef::categorical("g", 3)],
            3,
        )
    }

    /// root: x < 2.5 → [switch g → leaf0|leaf1|leaf2] | [subset g {0,2} → leaf1|leaf2]
    fn mixed_tree() -> DecisionTree {
        let mk = |majority: u8, test, children: Vec<u32>| Node {
            depth: 0, // depths unused by prediction
            hist: vec![1, 1, 1],
            majority,
            test,
            children,
        };
        DecisionTree {
            schema: schema(),
            nodes: vec![
                mk(
                    0,
                    Some(SplitTest::Continuous {
                        attr: 0,
                        threshold: 2.5,
                    }),
                    vec![1, 2],
                ),
                mk(0, Some(SplitTest::Categorical { attr: 1 }), vec![3, 4, 5]),
                mk(
                    1,
                    Some(SplitTest::CategoricalSubset {
                        attr: 1,
                        left_mask: 0b101,
                    }),
                    vec![6, 7],
                ),
                mk(0, None, vec![]),
                mk(1, None, vec![]),
                mk(2, None, vec![]),
                mk(1, None, vec![]),
                mk(2, None, vec![]),
            ],
        }
    }

    fn dataset(n: usize) -> Dataset {
        let xs: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let gs: Vec<u32> = (0..n).map(|i| ((i * 5) % 3) as u32).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        Dataset::new(
            schema(),
            vec![Column::Continuous(xs), Column::Categorical(gs)],
            labels,
        )
    }

    #[test]
    fn compile_is_breadth_first_with_contiguous_children() {
        let flat = FlatTree::compile(&mixed_tree());
        assert_eq!(flat.len(), 8);
        assert_eq!(flat.kind[0], FlatKind::Continuous);
        assert_eq!(flat.child_base[0], 1);
        assert_eq!(flat.kind[1], FlatKind::Categorical);
        assert_eq!(flat.child_base[1], 3);
        assert_eq!(flat.kind[2], FlatKind::Subset);
        assert_eq!(flat.child_base[2], 6);
        assert_eq!(flat.masks, vec![0b101]);
        assert!(flat.kind[3..].iter().all(|&k| k == FlatKind::Leaf));
        assert!(flat.heap_bytes() > 0);
    }

    #[test]
    fn batch_matches_per_record_oracle() {
        let tree = mixed_tree();
        let flat = FlatTree::compile(&tree);
        let data = dataset(257);
        let mut out = vec![0u8; data.len()];
        flat.predict_batch(&data, &mut out);
        for (rid, &got) in out.iter().enumerate() {
            assert_eq!(got, tree.predict(&data, rid), "record {rid}");
            assert_eq!(flat.predict(&data, rid), tree.predict(&data, rid));
        }
    }

    #[test]
    fn range_scoring_matches_full_batch() {
        let tree = mixed_tree();
        let flat = FlatTree::compile(&tree);
        let data = dataset(100);
        let mut full = vec![0u8; 100];
        flat.predict_batch(&data, &mut full);
        let mut part = vec![0u8; 40];
        flat.predict_range(&data, 30, 70, &mut part);
        assert_eq!(&full[30..70], &part[..]);
        flat.predict_range(&data, 50, 50, &mut []);
    }

    #[test]
    fn single_leaf_tree() {
        let tree = DecisionTree {
            schema: schema(),
            nodes: vec![Node::leaf(0, vec![1, 4, 2])],
        };
        let flat = FlatTree::compile(&tree);
        let data = dataset(9);
        let mut out = vec![9u8; 9];
        flat.predict_batch(&data, &mut out);
        assert!(out.iter().all(|&c| c == 1));
        assert_eq!(flat.predict(&data, 0), 1);
    }

    #[test]
    fn accuracy_matches_oracle_accuracy() {
        let tree = mixed_tree();
        let flat = FlatTree::compile(&tree);
        let data = dataset(123);
        let oracle = (0..data.len())
            .filter(|&i| tree.predict(&data, i) == data.labels[i])
            .count() as f64
            / data.len() as f64;
        assert_eq!(flat.accuracy(&data), oracle);
    }

    #[test]
    fn leaf_ids_match_single_record_walk() {
        let tree = mixed_tree();
        let flat = FlatTree::compile(&tree);
        let data = dataset(173);
        let mut leaves = vec![0u32; data.len()];
        flat.predict_leaves_range(&data, 0, data.len(), &mut leaves);
        for (rid, &leaf) in leaves.iter().enumerate() {
            assert_eq!(leaf, flat.predict_leaf(&data, rid), "record {rid}");
            // The leaf really is a leaf and carries the predicted class.
            assert_eq!(flat.kind[leaf as usize], FlatKind::Leaf);
            assert_eq!(flat.leaf_class[leaf as usize], flat.predict(&data, rid));
        }
        // Root-leaf fast path.
        let single = DecisionTree {
            schema: schema(),
            nodes: vec![Node::leaf(0, vec![1, 4, 2])],
        };
        let flat = FlatTree::compile(&single);
        let mut leaves = vec![7u32; 5];
        flat.predict_leaves_range(&data, 2, 7, &mut leaves);
        assert!(leaves.iter().all(|&l| l == 0));
    }

    #[test]
    fn bfs_order_aligns_flat_ids_with_arena_nodes() {
        let tree = mixed_tree();
        let flat = FlatTree::compile(&tree);
        let order = FlatTree::bfs_order(&tree);
        assert_eq!(order.len(), flat.len());
        // Flat node i's majority class equals arena node order[i]'s.
        for (i, &old) in order.iter().enumerate() {
            assert_eq!(flat.leaf_class[i], tree.nodes[old as usize].majority);
        }
    }

    #[test]
    #[should_panic(expected = "not a tree")]
    fn compile_rejects_shared_children() {
        let mut tree = mixed_tree();
        tree.nodes[2].children = vec![3, 4]; // shares node 1's children
        FlatTree::compile(&tree);
    }
}
