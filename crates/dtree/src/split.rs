//! Shared split-candidate construction used by every classifier in the
//! workspace (serial SPRINT, CART-style, and — via the `scalparc` crate —
//! both parallel formulations). Keeping candidate generation in one place
//! is what guarantees identical trees across implementations.

use crate::gini::{best_subset_split_with, CountMatrix, Criterion};
use crate::tree::{BestSplit, SplitTest};

/// How categorical attributes are split.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CatSplitMode {
    /// One partition per domain value (paper §2's default assumption).
    #[default]
    PerValue,
    /// Two partitions characterized by a subset of domain values (the
    /// paper's footnote variant; SPRINT/SLIQ-style subsetting — exhaustive
    /// up to [`crate::gini::SUBSET_EXHAUSTIVE_LIMIT`] populated values,
    /// greedy beyond).
    BinarySubset,
}

/// How split candidates are generated and scored: categorical mode plus the
/// impurity criterion. One copy of these options is shared by every
/// classifier in the workspace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitOptions {
    /// How categorical attributes split.
    pub cat_mode: CatSplitMode,
    /// Which impurity function scores candidates (gini in the paper;
    /// entropy as the C4.5-style extension).
    pub criterion: Criterion,
}

/// The categorical candidate for `attr` from its (global) count matrix.
pub fn categorical_candidate(
    attr: usize,
    matrix: &CountMatrix,
    opts: SplitOptions,
) -> Option<BestSplit> {
    match opts.cat_mode {
        CatSplitMode::PerValue => opts.criterion.multiway_split(matrix).map(|gini| BestSplit {
            gini,
            test: SplitTest::Categorical { attr },
        }),
        CatSplitMode::BinarySubset => {
            best_subset_split_with(matrix, opts.criterion).map(|s| BestSplit {
                gini: s.gini,
                test: SplitTest::CategoricalSubset {
                    attr,
                    left_mask: s.left_mask,
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: &[&[u64]]) -> CountMatrix {
        let classes = rows[0].len();
        let flat: Vec<u64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        CountMatrix::from_slice(rows.len(), classes, &flat)
    }

    #[test]
    fn per_value_mode_yields_m_way_test() {
        let m = matrix(&[&[3, 0], &[0, 3]]);
        let c = categorical_candidate(
            5,
            &m,
            SplitOptions {
                cat_mode: CatSplitMode::PerValue,
                ..SplitOptions::default()
            },
        )
        .unwrap();
        assert_eq!(c.test, SplitTest::Categorical { attr: 5 });
        assert_eq!(c.gini, 0.0);
    }

    #[test]
    fn subset_mode_yields_binary_test() {
        let m = matrix(&[&[3, 0], &[0, 3], &[2, 0]]);
        let c = categorical_candidate(
            1,
            &m,
            SplitOptions {
                cat_mode: CatSplitMode::BinarySubset,
                ..SplitOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            c.test,
            SplitTest::CategoricalSubset {
                attr: 1,
                left_mask: 0b101
            }
        );
        assert_eq!(c.gini, 0.0);
    }

    #[test]
    fn both_modes_agree_there_is_nothing_to_split() {
        let m = matrix(&[&[4, 4], &[0, 0]]);
        let per_value = SplitOptions::default();
        let subset = SplitOptions {
            cat_mode: CatSplitMode::BinarySubset,
            ..SplitOptions::default()
        };
        assert!(categorical_candidate(0, &m, per_value).is_none());
        assert!(categorical_candidate(0, &m, subset).is_none());
    }
}
