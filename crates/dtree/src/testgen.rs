//! Randomized model and data generators for property tests.
//!
//! The workspace's serving-path proptests need *arbitrary* decision trees —
//! not just trees some inducer would build — so that the batched flat
//! kernel and the text persistence are exercised on every structural shape:
//! deep chains, wide categorical fans, subset masks, single-leaf trees.
//! This module generates schema-consistent random trees and datasets from a
//! seed, deterministically, without pulling an RNG crate into `dtree`'s
//! dependency set.

use crate::data::{AttrDef, AttrKind, Column, Dataset, Schema};
use crate::tree::{majority_class, DecisionTree, Node, SplitTest};

/// SplitMix64 — the same tiny deterministic generator `eval` uses for
/// shuffling, exposed for test-input generation.
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A random schema: 1–5 attributes mixing continuous and categorical
/// (cardinality 2–6), 2–4 classes.
pub fn random_schema(rng: &mut TestRng) -> Schema {
    let n_attrs = 1 + rng.below(5) as usize;
    let attrs = (0..n_attrs)
        .map(|i| {
            if rng.below(2) == 0 {
                AttrDef::continuous(&format!("c{i}"))
            } else {
                AttrDef::categorical(&format!("g{i}"), 2 + rng.below(5) as u32)
            }
        })
        .collect();
    Schema::new(attrs, 2 + rng.below(3) as u32)
}

/// A random schema-consistent decision tree with at most `max_nodes` nodes
/// and depth at most `max_depth`. Node histograms are arbitrary (nonzero)
/// counts with consistent majorities; every structural invariant prediction
/// and persistence rely on (arity matches the test, children in-bounds,
/// depths consistent) holds.
pub fn random_tree(
    schema: &Schema,
    rng: &mut TestRng,
    max_depth: u32,
    max_nodes: usize,
) -> DecisionTree {
    let classes = schema.num_classes as usize;
    let mut nodes: Vec<Node> = Vec::new();
    // Queue of nodes to materialize, breadth-first: (depth, forced leaf?).
    let mut pending: Vec<u32> = vec![0];
    let mut head = 0usize;
    while head < pending.len() {
        let depth = pending[head];
        head += 1;
        let hist: Vec<u64> = (0..classes).map(|_| 1 + rng.below(50)).collect();
        let mut node = Node::leaf(depth, hist);
        node.majority = majority_class(&node.hist);
        // Split unless out of depth or the node budget could not absorb the
        // widest possible fan-out (6 children).
        let budget_left = max_nodes.saturating_sub(pending.len()) >= 6;
        if depth < max_depth && budget_left && rng.unit() < 0.7 {
            let attr = rng.below(schema.num_attrs() as u64) as usize;
            let test = match schema.attrs[attr].kind {
                AttrKind::Continuous => SplitTest::Continuous {
                    attr,
                    threshold: (rng.unit() as f32 - 0.5) * 200.0,
                },
                AttrKind::Categorical { cardinality } => {
                    if rng.below(2) == 0 {
                        SplitTest::Categorical { attr }
                    } else {
                        SplitTest::CategoricalSubset {
                            attr,
                            left_mask: rng.next_u64() & ((1u64 << cardinality) - 1),
                        }
                    }
                }
            };
            let arity = test.arity(schema);
            node.test = Some(test);
            node.children = (0..arity)
                .map(|_| {
                    pending.push(depth + 1);
                    (pending.len() - 1) as u32
                })
                .collect();
        }
        nodes.push(node);
    }
    DecisionTree {
        schema: schema.clone(),
        nodes,
    }
}

/// A random forest: `k` independent schema-consistent random trees over one
/// schema, for forest serving-parity and persistence proptests.
pub fn random_forest(
    schema: &Schema,
    rng: &mut TestRng,
    k: usize,
    max_depth: u32,
    max_nodes: usize,
) -> Vec<DecisionTree> {
    (0..k)
        .map(|_| random_tree(schema, rng, max_depth, max_nodes))
        .collect()
}

/// A random dataset of `n` records under `schema`: finite continuous values
/// in `[-120, 120)` (quantized so threshold ties occur), in-domain
/// categorical values, in-range labels.
pub fn random_dataset(schema: &Schema, rng: &mut TestRng, n: usize) -> Dataset {
    let columns = schema
        .attrs
        .iter()
        .map(|a| match a.kind {
            AttrKind::Continuous => Column::Continuous(
                (0..n)
                    .map(|_| (rng.below(480) as f32 - 240.0) / 2.0)
                    .collect(),
            ),
            AttrKind::Categorical { cardinality } => Column::Categorical(
                (0..n)
                    .map(|_| rng.below(cardinality as u64) as u32)
                    .collect(),
            ),
        })
        .collect();
    let labels = (0..n)
        .map(|_| rng.below(schema.num_classes as u64) as u8)
        .collect();
    Dataset::new(schema.clone(), columns, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trees_are_structurally_valid() {
        let mut rng = TestRng::new(7);
        for _ in 0..50 {
            let schema = random_schema(&mut rng);
            let tree = random_tree(&schema, &mut rng, 6, 200);
            assert!(tree.nodes.len() <= 200 + 6);
            // Children in bounds and depths consistent (validate() would
            // also demand histogram sums, which random hists don't satisfy).
            for node in &tree.nodes {
                if let Some(test) = node.test {
                    assert_eq!(node.children.len(), test.arity(&schema));
                }
                for &c in &node.children {
                    assert!((c as usize) < tree.nodes.len());
                    assert_eq!(tree.nodes[c as usize].depth, node.depth + 1);
                }
            }
            let data = random_dataset(&schema, &mut rng, 64);
            assert_eq!(data.len(), 64);
            // Prediction terminates and stays in class range.
            for rid in 0..data.len() {
                assert!((tree.predict(&data, rid) as u32) < schema.num_classes);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mk = || {
            let mut rng = TestRng::new(99);
            let schema = random_schema(&mut rng);
            let tree = random_tree(&schema, &mut rng, 5, 100);
            let data = random_dataset(&schema, &mut rng, 32);
            (tree, data)
        };
        assert_eq!(mk(), mk());
    }
}
