//! Decision-tree model persistence: a versioned, line-oriented text format
//! with exact (bit-preserving) float round-tripping, so trained models can
//! be stored, diffed, and reloaded without serde.
//!
//! ```text
//! scalparc-tree v1
//! classes 2
//! attr continuous salary
//! attr categorical elevel 5
//! nodes 3
//! node depth 0 hist 5,7 majority 1 test cont 0 3f19999a children 1,2
//! node depth 1 hist 5,0 majority 0 leaf
//! node depth 1 hist 0,7 majority 1 leaf
//! ```
//!
//! Thresholds are serialized as hexadecimal IEEE-754 bits: every classifier
//! in this workspace guarantees bit-identical trees, and persistence must
//! not break that by printing decimals.

use std::fmt::Write as _;
use std::path::Path;

use crate::data::{AttrDef, AttrKind, Schema};
use crate::tree::{DecisionTree, Node, SplitTest};

/// Serialize a tree to the text format.
pub fn to_text(tree: &DecisionTree) -> String {
    let mut out = String::new();
    out.push_str("scalparc-tree v1\n");
    let _ = writeln!(out, "classes {}", tree.schema.num_classes);
    for attr in &tree.schema.attrs {
        assert!(
            !attr.name.contains(char::is_whitespace),
            "attribute name {:?} cannot be persisted (whitespace)",
            attr.name
        );
        match attr.kind {
            AttrKind::Continuous => {
                let _ = writeln!(out, "attr continuous {}", attr.name);
            }
            AttrKind::Categorical { cardinality } => {
                let _ = writeln!(out, "attr categorical {} {}", attr.name, cardinality);
            }
        }
    }
    let _ = writeln!(out, "nodes {}", tree.nodes.len());
    for node in &tree.nodes {
        let hist: Vec<String> = node.hist.iter().map(|c| c.to_string()).collect();
        let _ = write!(
            out,
            "node depth {} hist {} majority {} ",
            node.depth,
            hist.join(","),
            node.majority
        );
        match node.test {
            None => out.push_str("leaf\n"),
            Some(test) => {
                match test {
                    SplitTest::Continuous { attr, threshold } => {
                        let _ = write!(out, "test cont {attr} {:08x} ", threshold.to_bits());
                    }
                    SplitTest::Categorical { attr } => {
                        let _ = write!(out, "test cat {attr} ");
                    }
                    SplitTest::CategoricalSubset { attr, left_mask } => {
                        let _ = write!(out, "test subset {attr} {left_mask:x} ");
                    }
                }
                let children: Vec<String> = node.children.iter().map(|c| c.to_string()).collect();
                let _ = writeln!(out, "children {}", children.join(","));
            }
        }
    }
    out
}

/// Write a tree to a file.
pub fn save(tree: &DecisionTree, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(tree))
}

fn err(line: usize, msg: impl Into<String>) -> String {
    format!("line {}: {}", line + 1, msg.into())
}

/// Parse a tree from the text format.
///
/// # Errors
/// Every error message carries the 1-based number of the offending line
/// (for whole-document problems like a wrong node count, the line the
/// declaration was made on); a successfully parsed tree additionally passes
/// [`DecisionTree::validate`]-level invariants (child counts, id bounds).
pub fn from_text(text: &str) -> Result<DecisionTree, String> {
    let mut lines = text.lines().enumerate();
    let (ln, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header != "scalparc-tree v1" {
        return Err(err(ln, format!("bad header {header:?}")));
    }
    let (ln, classes_line) = lines.next().ok_or_else(|| err(1, "missing classes line"))?;
    let num_classes: u32 = classes_line
        .strip_prefix("classes ")
        .ok_or_else(|| err(ln, "expected `classes <n>`"))?
        .parse()
        .map_err(|e| err(ln, format!("bad class count: {e}")))?;

    let mut attrs: Vec<AttrDef> = Vec::new();
    let mut nodes_decl: Option<(usize, usize)> = None;
    let mut last_ln = ln;
    for (ln, line) in lines.by_ref() {
        last_ln = ln;
        if let Some(rest) = line.strip_prefix("attr ") {
            let mut parts = rest.split(' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("continuous"), Some(name), None) => attrs.push(AttrDef::continuous(name)),
                (Some("categorical"), Some(name), Some(card)) => attrs.push(AttrDef::categorical(
                    name,
                    card.parse()
                        .map_err(|e| err(ln, format!("bad cardinality: {e}")))?,
                )),
                _ => return Err(err(ln, "malformed attr line")),
            }
        } else if let Some(rest) = line.strip_prefix("nodes ") {
            nodes_decl = Some((
                ln,
                rest.parse()
                    .map_err(|e| err(ln, format!("bad node count: {e}")))?,
            ));
            break;
        } else {
            return Err(err(ln, "expected `attr …` or `nodes <n>`"));
        }
    }
    let (decl_ln, n_nodes) = nodes_decl.ok_or_else(|| err(last_ln, "missing `nodes` line"))?;
    if attrs.is_empty() {
        return Err(err(decl_ln, "no attributes declared"));
    }
    let schema = Schema::new(attrs, num_classes);

    let mut nodes: Vec<Node> = Vec::with_capacity(n_nodes);
    let mut node_lns: Vec<usize> = Vec::with_capacity(n_nodes);
    for (ln, line) in lines {
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split(' ').collect();
        // node depth D hist H majority M (leaf | test … children …)
        if toks.first() != Some(&"node") || toks.get(1) != Some(&"depth") {
            return Err(err(ln, "expected node line"));
        }
        let depth: u32 = toks
            .get(2)
            .ok_or_else(|| err(ln, "missing depth"))?
            .parse()
            .map_err(|e| err(ln, format!("bad depth: {e}")))?;
        if toks.get(3) != Some(&"hist") {
            return Err(err(ln, "missing hist"));
        }
        let hist: Vec<u64> = toks
            .get(4)
            .ok_or_else(|| err(ln, "missing hist values"))?
            .split(',')
            .map(|t| t.parse().map_err(|e| err(ln, format!("bad hist: {e}"))))
            .collect::<Result<_, _>>()?;
        if hist.len() != num_classes as usize {
            return Err(err(ln, "hist length != classes"));
        }
        if toks.get(5) != Some(&"majority") {
            return Err(err(ln, "missing majority"));
        }
        let majority: u8 = toks
            .get(6)
            .ok_or_else(|| err(ln, "missing majority value"))?
            .parse()
            .map_err(|e| err(ln, format!("bad majority: {e}")))?;

        let mut node = Node::leaf(depth, hist);
        node.majority = majority;
        match toks.get(7) {
            Some(&"leaf") => {}
            Some(&"test") => {
                let kind = *toks.get(8).ok_or_else(|| err(ln, "missing test kind"))?;
                let attr: usize = toks
                    .get(9)
                    .ok_or_else(|| err(ln, "missing test attr"))?
                    .parse()
                    .map_err(|e| err(ln, format!("bad attr: {e}")))?;
                if attr >= schema.num_attrs() {
                    return Err(err(ln, "test attr out of range"));
                }
                let (test, children_idx) = match kind {
                    "cont" => {
                        let bits = u32::from_str_radix(
                            toks.get(10).ok_or_else(|| err(ln, "missing threshold"))?,
                            16,
                        )
                        .map_err(|e| err(ln, format!("bad threshold bits: {e}")))?;
                        let threshold = f32::from_bits(bits);
                        if !threshold.is_finite() {
                            return Err(err(
                                ln,
                                format!(
                                    "non-finite split threshold {threshold} (bits {bits:08x}); \
                                     no classifier in this workspace emits one"
                                ),
                            ));
                        }
                        (SplitTest::Continuous { attr, threshold }, 11)
                    }
                    "cat" => (SplitTest::Categorical { attr }, 10),
                    "subset" => {
                        let mask = u64::from_str_radix(
                            toks.get(10).ok_or_else(|| err(ln, "missing mask"))?,
                            16,
                        )
                        .map_err(|e| err(ln, format!("bad mask: {e}")))?;
                        (
                            SplitTest::CategoricalSubset {
                                attr,
                                left_mask: mask,
                            },
                            11,
                        )
                    }
                    other => return Err(err(ln, format!("unknown test kind {other:?}"))),
                };
                if toks.get(children_idx) != Some(&"children") {
                    return Err(err(ln, "missing children"));
                }
                let children: Vec<u32> = toks
                    .get(children_idx + 1)
                    .ok_or_else(|| err(ln, "missing child ids"))?
                    .split(',')
                    .map(|t| t.parse().map_err(|e| err(ln, format!("bad child id: {e}"))))
                    .collect::<Result<_, _>>()?;
                if children.len() != test.arity(&schema) {
                    return Err(err(ln, "child count does not match test arity"));
                }
                node.test = Some(test);
                node.children = children;
            }
            _ => return Err(err(ln, "expected `leaf` or `test`")),
        }
        nodes.push(node);
        node_lns.push(ln);
    }
    if nodes.len() != n_nodes {
        return Err(err(
            decl_ln,
            format!("declared {n_nodes} nodes but parsed {}", nodes.len()),
        ));
    }
    if nodes.is_empty() {
        return Err(err(decl_ln, "tree must have at least a root node"));
    }
    for (node, &ln) in nodes.iter().zip(&node_lns) {
        for &c in &node.children {
            if c as usize >= nodes.len() {
                return Err(err(ln, format!("child id {c} out of range")));
            }
        }
    }
    Ok(DecisionTree { schema, nodes })
}

/// Read a tree from a file.
pub fn load(path: &Path) -> Result<DecisionTree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_text(&text)
}

/// Serialize a forest to the text format: a versioned envelope of per-tree
/// sections, each a complete [`to_text`] document with a declared line
/// count, closed by an `end` line.
///
/// ```text
/// scalparc-forest v1
/// trees 2
/// tree 0 lines 5
/// scalparc-tree v1
/// …
/// tree 1 lines 5
/// scalparc-tree v1
/// …
/// end
/// ```
pub fn forest_to_text(trees: &[DecisionTree]) -> String {
    assert!(!trees.is_empty(), "a forest needs at least one tree");
    let mut out = String::new();
    out.push_str("scalparc-forest v1\n");
    let _ = writeln!(out, "trees {}", trees.len());
    for (t, tree) in trees.iter().enumerate() {
        let body = to_text(tree);
        let _ = writeln!(out, "tree {t} lines {}", body.lines().count());
        out.push_str(&body);
    }
    out.push_str("end\n");
    out
}

/// Write a forest to a file (plain text; see `scalparc::forest::save_forest`
/// for the CRC-guarded container).
pub fn save_forest(trees: &[DecisionTree], path: &Path) -> std::io::Result<()> {
    std::fs::write(path, forest_to_text(trees))
}

/// Rebase a [`from_text`] error from section-local to whole-document line
/// numbers: the section's lines start after `base` envelope/section lines.
fn rebase(e: String, base: usize) -> String {
    if let Some(rest) = e.strip_prefix("line ") {
        if let Some((n, msg)) = rest.split_once(':') {
            if let Ok(n) = n.parse::<usize>() {
                return format!("line {}:{}", base + n, msg);
            }
        }
    }
    e
}

/// Parse a forest from the text format.
///
/// # Errors
/// Every error carries the 1-based number of the offending line: a bad or
/// missing section header, a section truncated short of its declared line
/// count, **more** tree sections than declared (they surface where `end`
/// was expected), trailing content after `end`, a tree whose schema differs
/// from tree 0's, and every per-tree error [`from_text`] reports (rebased
/// to whole-document line numbers).
pub fn forest_from_text(text: &str) -> Result<Vec<DecisionTree>, String> {
    let mut lines = text.lines();
    let mut ln = 0usize; // 0-based index of the line about to be read
    let mut next = |ln: &mut usize| {
        let l = lines.next();
        if l.is_some() {
            *ln += 1;
        }
        l
    };

    let header = next(&mut ln).ok_or_else(|| err(0, "empty input"))?;
    if header != "scalparc-forest v1" {
        return Err(err(ln - 1, format!("bad forest header {header:?}")));
    }
    let count_line = next(&mut ln).ok_or_else(|| err(1, "missing trees line"))?;
    let n_trees: usize = count_line
        .strip_prefix("trees ")
        .ok_or_else(|| err(ln - 1, "expected `trees <k>`"))?
        .parse()
        .map_err(|e| err(ln - 1, format!("bad tree count: {e}")))?;
    if n_trees == 0 {
        return Err(err(ln - 1, "forest must have at least one tree"));
    }

    let mut trees: Vec<DecisionTree> = Vec::with_capacity(n_trees);
    for t in 0..n_trees {
        let header = next(&mut ln)
            .ok_or_else(|| err(ln, format!("forest truncated: missing `tree {t}` section")))?;
        let header_ln = ln - 1;
        let rest = header
            .strip_prefix("tree ")
            .ok_or_else(|| err(header_ln, format!("expected `tree {t} lines <n>`")))?;
        let (idx, n_lines) = rest
            .split_once(" lines ")
            .ok_or_else(|| err(header_ln, format!("expected `tree {t} lines <n>`")))?;
        let idx: usize = idx
            .parse()
            .map_err(|e| err(header_ln, format!("bad tree index: {e}")))?;
        if idx != t {
            return Err(err(
                header_ln,
                format!("tree sections out of order: expected tree {t}, found tree {idx}"),
            ));
        }
        let n_lines: usize = n_lines
            .parse()
            .map_err(|e| err(header_ln, format!("bad section line count: {e}")))?;
        let mut section = String::new();
        for got in 0..n_lines {
            let line = next(&mut ln).ok_or_else(|| {
                err(
                    ln,
                    format!("tree {t} section truncated after {got} of {n_lines} lines"),
                )
            })?;
            section.push_str(line);
            section.push('\n');
        }
        let base = ln - n_lines; // lines before the section body
        let tree = from_text(&section).map_err(|e| rebase(e, base))?;
        if let Some(first) = trees.first() {
            if tree.schema != first.schema {
                return Err(err(
                    header_ln,
                    format!("tree {t} schema differs from tree 0"),
                ));
            }
        }
        trees.push(tree);
    }

    match next(&mut ln) {
        Some("end") => {}
        Some(line) if line.starts_with("tree ") => {
            return Err(err(
                ln - 1,
                format!("declared {n_trees} trees but found another tree section"),
            ));
        }
        Some(_) => return Err(err(ln - 1, "expected `end`")),
        None => return Err(err(ln, "forest truncated: missing `end`")),
    }
    if let Some(extra) = next(&mut ln) {
        if !extra.is_empty() {
            return Err(err(ln - 1, "content after `end`"));
        }
    }
    Ok(trees)
}

/// Read a forest from a plain-text file.
pub fn load_forest(path: &Path) -> Result<Vec<DecisionTree>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    forest_from_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, Dataset};
    use crate::split::{CatSplitMode, SplitOptions};
    use crate::sprint::{self, SprintConfig};

    fn mixed_dataset() -> Dataset {
        let schema = Schema::new(
            vec![AttrDef::continuous("x"), AttrDef::categorical("g", 3)],
            2,
        );
        let n = 60usize;
        let xs: Vec<f32> = (0..n).map(|i| ((i * 31) % 97) as f32 / 3.0).collect();
        let gs: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let labels: Vec<u8> = (0..n)
            .map(|i| u8::from(xs[i] > 16.0 || gs[i] == 2))
            .collect();
        Dataset::new(
            schema,
            vec![Column::Continuous(xs), Column::Categorical(gs)],
            labels,
        )
    }

    #[test]
    fn roundtrip_is_exact() {
        let data = mixed_dataset();
        let tree = sprint::induce(&data, &SprintConfig::default());
        let text = to_text(&tree);
        let back = from_text(&text).unwrap();
        assert_eq!(back, tree);
        back.validate();
    }

    #[test]
    fn roundtrip_subset_mode() {
        let data = mixed_dataset();
        let tree = sprint::induce(
            &data,
            &SprintConfig {
                split: SplitOptions {
                    cat_mode: CatSplitMode::BinarySubset,
                    ..SplitOptions::default()
                },
                ..SprintConfig::default()
            },
        );
        let back = from_text(&to_text(&tree)).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn thresholds_roundtrip_bit_exactly() {
        // An awkward float that would lose bits through decimal printing.
        let tree = DecisionTree {
            schema: Schema::new(vec![AttrDef::continuous("x")], 2),
            nodes: vec![
                Node {
                    depth: 0,
                    hist: vec![1, 1],
                    majority: 0,
                    test: Some(SplitTest::Continuous {
                        attr: 0,
                        threshold: f32::from_bits(0x3f99_999a), // 1.2000000476…
                    }),
                    children: vec![1, 2],
                },
                Node::leaf(1, vec![1, 0]),
                Node::leaf(1, vec![0, 1]),
            ],
        };
        let back = from_text(&to_text(&tree)).unwrap();
        match back.nodes[0].test {
            Some(SplitTest::Continuous { threshold, .. }) => {
                assert_eq!(threshold.to_bits(), 0x3f99_999a);
            }
            _ => panic!("wrong test"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let data = mixed_dataset();
        let tree = sprint::induce(&data, &SprintConfig::default());
        let dir = std::env::temp_dir().join("scalparc-model-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tree");
        save(&tree, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, tree);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_text("nonsense v9\n").unwrap_err().contains("header"));
    }

    #[test]
    fn rejects_wrong_hist_length() {
        let text = "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 1\n\
                    node depth 0 hist 1,2,3 majority 0 leaf\n";
        assert!(from_text(text).unwrap_err().contains("hist length"));
    }

    #[test]
    fn rejects_out_of_range_children() {
        let text = "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 1\n\
                    node depth 0 hist 1,1 majority 0 test cont 0 3f800000 children 5,6\n";
        assert!(from_text(text).unwrap_err().contains("out of range"));
    }

    #[test]
    fn rejects_non_finite_thresholds_with_line_number() {
        // 7fc00000 = NaN, 7f800000 = +inf, ff800000 = -inf.
        for bits in ["7fc00000", "7f800000", "ff800000"] {
            let text = format!(
                "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 3\n\
                 node depth 0 hist 1,1 majority 0 test cont 0 {bits} children 1,2\n\
                 node depth 1 hist 1,0 majority 0 leaf\n\
                 node depth 1 hist 0,1 majority 1 leaf\n"
            );
            let e = from_text(&text).unwrap_err();
            assert!(e.starts_with("line 5:"), "{e}");
            assert!(e.contains("non-finite"), "{e}");
        }
    }

    #[test]
    fn rejects_arity_mismatch() {
        let text = "scalparc-tree v1\nclasses 2\nattr categorical g 3\nnodes 1\n\
                    node depth 0 hist 1,1 majority 0 test cat 0 children 1,2\n";
        assert!(from_text(text).unwrap_err().contains("arity"));
    }

    #[test]
    fn rejects_empty_tree() {
        let text = "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 0\n";
        assert!(from_text(text).unwrap_err().contains("at least a root"));
    }

    #[test]
    #[should_panic(expected = "cannot be persisted")]
    fn rejects_spaced_attribute_names_on_save() {
        use crate::tree::Node;
        let tree = DecisionTree {
            schema: Schema::new(vec![AttrDef::continuous("my attr")], 2),
            nodes: vec![Node::leaf(0, vec![1, 0])],
        };
        to_text(&tree);
    }

    #[test]
    fn rejects_node_count_mismatch() {
        let text = "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 2\n\
                    node depth 0 hist 1,1 majority 0 leaf\n";
        assert!(from_text(text).unwrap_err().contains("declared 2 nodes"));
    }

    #[test]
    fn every_error_carries_the_offending_line_number() {
        assert!(from_text("").unwrap_err().starts_with("line 1:"));
        let e = from_text("scalparc-tree v1\n").unwrap_err();
        assert!(e.starts_with("line 2:"), "{e}");
        // Wrong node count points at the `nodes` declaration line.
        let e = from_text(
            "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 2\n\
             node depth 0 hist 1,1 majority 0 leaf\n",
        )
        .unwrap_err();
        assert!(e.starts_with("line 4:"), "{e}");
        // An out-of-range child points at its node's line.
        let e = from_text(
            "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 1\n\
             node depth 0 hist 1,1 majority 0 test cont 0 3f800000 children 5,6\n",
        )
        .unwrap_err();
        assert!(e.starts_with("line 5:"), "{e}");
        // A truncated document points past its last line.
        let e = from_text("scalparc-tree v1\nclasses 2\nattr continuous x\n").unwrap_err();
        assert!(e.starts_with("line 3:") && e.contains("nodes"), "{e}");
    }

    #[test]
    fn forest_roundtrip_is_exact() {
        let data = mixed_dataset();
        let t1 = sprint::induce(&data, &SprintConfig::default());
        let t2 = sprint::induce(
            &data,
            &SprintConfig {
                split: SplitOptions {
                    cat_mode: CatSplitMode::BinarySubset,
                    ..SplitOptions::default()
                },
                ..SprintConfig::default()
            },
        );
        let trees = vec![t1, t2];
        let text = forest_to_text(&trees);
        let back = forest_from_text(&text).unwrap();
        assert_eq!(back, trees);
        assert_eq!(forest_to_text(&back), text);
    }

    #[test]
    fn forest_file_roundtrip() {
        let data = mixed_dataset();
        let trees = vec![sprint::induce(&data, &SprintConfig::default())];
        let dir = std::env::temp_dir().join("scalparc-forest-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.forest");
        save_forest(&trees, &path).unwrap();
        assert_eq!(load_forest(&path).unwrap(), trees);
        let _ = std::fs::remove_file(&path);
    }

    fn two_leaf_forest_text() -> String {
        // trees of one leaf each: section body is 5 lines
        // (header, classes, attr, nodes, node).
        "scalparc-forest v1\ntrees 2\n\
         tree 0 lines 5\nscalparc-tree v1\nclasses 2\nattr continuous x\nnodes 1\n\
         node depth 0 hist 1,1 majority 0 leaf\n\
         tree 1 lines 5\nscalparc-tree v1\nclasses 2\nattr continuous x\nnodes 1\n\
         node depth 0 hist 2,1 majority 0 leaf\n\
         end\n"
            .to_string()
    }

    #[test]
    fn forest_text_fixture_parses() {
        let trees = forest_from_text(&two_leaf_forest_text()).unwrap();
        assert_eq!(trees.len(), 2);
        assert_eq!(forest_to_text(&trees), two_leaf_forest_text());
    }

    #[test]
    fn forest_rejects_truncated_section_with_line_number() {
        // Cut the document mid-way through tree 1's section.
        let full = two_leaf_forest_text();
        let cut: String = full.lines().take(11).collect::<Vec<_>>().join("\n") + "\n";
        let e = forest_from_text(&cut).unwrap_err();
        assert!(e.starts_with("line 12:"), "{e}");
        assert!(e.contains("truncated after 2 of 5 lines"), "{e}");
        // Cut before tree 1's header: the missing section is named.
        let cut: String = full.lines().take(8).collect::<Vec<_>>().join("\n") + "\n";
        let e = forest_from_text(&cut).unwrap_err();
        assert!(e.starts_with("line 9:"), "{e}");
        assert!(e.contains("missing `tree 1` section"), "{e}");
        // Cut after the sections but before `end`.
        let cut: String = full.lines().take(14).collect::<Vec<_>>().join("\n") + "\n";
        let e = forest_from_text(&cut).unwrap_err();
        assert!(
            e.starts_with("line 15:") && e.contains("missing `end`"),
            "{e}"
        );
    }

    #[test]
    fn forest_rejects_over_count_sections_with_line_number() {
        // A third section where `end` belongs: over-count of declared trees.
        let extra = two_leaf_forest_text().replace(
            "end\n",
            "tree 2 lines 5\nscalparc-tree v1\nclasses 2\nattr continuous x\nnodes 1\n\
             node depth 0 hist 1,1 majority 0 leaf\nend\n",
        );
        let e = forest_from_text(&extra).unwrap_err();
        assert!(e.starts_with("line 15:"), "{e}");
        assert!(e.contains("declared 2 trees but found another"), "{e}");
        // Content after `end`.
        let trailing = two_leaf_forest_text() + "stray\n";
        let e = forest_from_text(&trailing).unwrap_err();
        assert!(
            e.starts_with("line 16:") && e.contains("after `end`"),
            "{e}"
        );
    }

    #[test]
    fn forest_rejects_bad_envelope() {
        assert!(forest_from_text("").unwrap_err().starts_with("line 1:"));
        let e = forest_from_text("scalparc-tree v1\n").unwrap_err();
        assert!(e.contains("bad forest header"), "{e}");
        let e = forest_from_text("scalparc-forest v1\ntrees 0\nend\n").unwrap_err();
        assert!(
            e.starts_with("line 2:") && e.contains("at least one tree"),
            "{e}"
        );
        // Section header out of order.
        let swapped = two_leaf_forest_text().replace("tree 0 lines", "tree 1 lines");
        let e = forest_from_text(&swapped).unwrap_err();
        assert!(
            e.starts_with("line 3:") && e.contains("out of order"),
            "{e}"
        );
    }

    #[test]
    fn forest_rebase_points_inner_errors_at_document_lines() {
        // Corrupt tree 1's node line (document line 14): the per-tree parse
        // error must carry the whole-document line number.
        let bad = two_leaf_forest_text().replace("hist 2,1", "hist 2,1,9");
        let e = forest_from_text(&bad).unwrap_err();
        assert!(e.starts_with("line 14:"), "{e}");
        assert!(e.contains("hist length"), "{e}");
    }

    #[test]
    fn forest_rejects_mixed_schemas() {
        let mixed = two_leaf_forest_text().replace(
            "tree 1 lines 5\nscalparc-tree v1\nclasses 2\nattr continuous x\n",
            "tree 1 lines 5\nscalparc-tree v1\nclasses 2\nattr continuous y\n",
        );
        let e = forest_from_text(&mixed).unwrap_err();
        assert!(e.starts_with("line 9:"), "{e}");
        assert!(e.contains("schema differs"), "{e}");
    }

    #[test]
    fn loaded_model_predicts_identically() {
        let data = mixed_dataset();
        let tree = sprint::induce(&data, &SprintConfig::default());
        let back = from_text(&to_text(&tree)).unwrap();
        for rid in 0..data.len() {
            assert_eq!(tree.predict(&data, rid), back.predict(&data, rid));
        }
    }
}

#[cfg(test)]
mod roundtrip_proptests {
    use super::*;
    use crate::flat::FlatTree;
    use crate::testgen::{self, TestRng};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48 })]

        // save → load → save is byte-identical across arbitrary tree shapes
        // (deep chains, categorical fans, subset masks, awkward thresholds),
        // and the reloaded model compiles to the identical flat tree — the
        // persistence guarantee the serving path depends on.
        #[test]
        fn save_load_save_is_byte_identical(seed in 0u64..(1u64 << 48)) {
            let mut rng = TestRng::new(seed);
            let schema = testgen::random_schema(&mut rng);
            let tree = testgen::random_tree(&schema, &mut rng, 6, 150);
            let text = to_text(&tree);
            let back = from_text(&text).unwrap();
            prop_assert_eq!(&back, &tree);
            prop_assert_eq!(to_text(&back), text);
            prop_assert_eq!(FlatTree::compile(&back), FlatTree::compile(&tree));
        }

        // The forest envelope inherits the same guarantee: save → load →
        // save is byte-identical for arbitrary member trees, and the
        // reloaded forest compiles to the identical FlatForest.
        #[test]
        fn forest_save_load_save_is_byte_identical(seed in 0u64..(1u64 << 48)) {
            use crate::flat_forest::{FlatForest, VoteReduce};
            let mut rng = TestRng::new(seed);
            let schema = testgen::random_schema(&mut rng);
            let k = 1 + (seed % 5) as usize;
            let trees = testgen::random_forest(&schema, &mut rng, k, 5, 60);
            let text = forest_to_text(&trees);
            let back = forest_from_text(&text).unwrap();
            prop_assert_eq!(&back, &trees);
            prop_assert_eq!(forest_to_text(&back), text);
            prop_assert_eq!(
                FlatForest::compile(&back, VoteReduce::ProbAverage),
                FlatForest::compile(&trees, VoteReduce::ProbAverage)
            );
        }
    }
}
