//! Decision-tree model persistence: a versioned, line-oriented text format
//! with exact (bit-preserving) float round-tripping, so trained models can
//! be stored, diffed, and reloaded without serde.
//!
//! ```text
//! scalparc-tree v1
//! classes 2
//! attr continuous salary
//! attr categorical elevel 5
//! nodes 3
//! node depth 0 hist 5,7 majority 1 test cont 0 3f19999a children 1,2
//! node depth 1 hist 5,0 majority 0 leaf
//! node depth 1 hist 0,7 majority 1 leaf
//! ```
//!
//! Thresholds are serialized as hexadecimal IEEE-754 bits: every classifier
//! in this workspace guarantees bit-identical trees, and persistence must
//! not break that by printing decimals.

use std::fmt::Write as _;
use std::path::Path;

use crate::data::{AttrDef, AttrKind, Schema};
use crate::tree::{DecisionTree, Node, SplitTest};

/// Serialize a tree to the text format.
pub fn to_text(tree: &DecisionTree) -> String {
    let mut out = String::new();
    out.push_str("scalparc-tree v1\n");
    let _ = writeln!(out, "classes {}", tree.schema.num_classes);
    for attr in &tree.schema.attrs {
        assert!(
            !attr.name.contains(char::is_whitespace),
            "attribute name {:?} cannot be persisted (whitespace)",
            attr.name
        );
        match attr.kind {
            AttrKind::Continuous => {
                let _ = writeln!(out, "attr continuous {}", attr.name);
            }
            AttrKind::Categorical { cardinality } => {
                let _ = writeln!(out, "attr categorical {} {}", attr.name, cardinality);
            }
        }
    }
    let _ = writeln!(out, "nodes {}", tree.nodes.len());
    for node in &tree.nodes {
        let hist: Vec<String> = node.hist.iter().map(|c| c.to_string()).collect();
        let _ = write!(
            out,
            "node depth {} hist {} majority {} ",
            node.depth,
            hist.join(","),
            node.majority
        );
        match node.test {
            None => out.push_str("leaf\n"),
            Some(test) => {
                match test {
                    SplitTest::Continuous { attr, threshold } => {
                        let _ = write!(out, "test cont {attr} {:08x} ", threshold.to_bits());
                    }
                    SplitTest::Categorical { attr } => {
                        let _ = write!(out, "test cat {attr} ");
                    }
                    SplitTest::CategoricalSubset { attr, left_mask } => {
                        let _ = write!(out, "test subset {attr} {left_mask:x} ");
                    }
                }
                let children: Vec<String> = node.children.iter().map(|c| c.to_string()).collect();
                let _ = writeln!(out, "children {}", children.join(","));
            }
        }
    }
    out
}

/// Write a tree to a file.
pub fn save(tree: &DecisionTree, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(tree))
}

fn err(line: usize, msg: impl Into<String>) -> String {
    format!("line {}: {}", line + 1, msg.into())
}

/// Parse a tree from the text format.
///
/// # Errors
/// Every error message carries the 1-based number of the offending line
/// (for whole-document problems like a wrong node count, the line the
/// declaration was made on); a successfully parsed tree additionally passes
/// [`DecisionTree::validate`]-level invariants (child counts, id bounds).
pub fn from_text(text: &str) -> Result<DecisionTree, String> {
    let mut lines = text.lines().enumerate();
    let (ln, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header != "scalparc-tree v1" {
        return Err(err(ln, format!("bad header {header:?}")));
    }
    let (ln, classes_line) = lines.next().ok_or_else(|| err(1, "missing classes line"))?;
    let num_classes: u32 = classes_line
        .strip_prefix("classes ")
        .ok_or_else(|| err(ln, "expected `classes <n>`"))?
        .parse()
        .map_err(|e| err(ln, format!("bad class count: {e}")))?;

    let mut attrs: Vec<AttrDef> = Vec::new();
    let mut nodes_decl: Option<(usize, usize)> = None;
    let mut last_ln = ln;
    for (ln, line) in lines.by_ref() {
        last_ln = ln;
        if let Some(rest) = line.strip_prefix("attr ") {
            let mut parts = rest.split(' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("continuous"), Some(name), None) => attrs.push(AttrDef::continuous(name)),
                (Some("categorical"), Some(name), Some(card)) => attrs.push(AttrDef::categorical(
                    name,
                    card.parse()
                        .map_err(|e| err(ln, format!("bad cardinality: {e}")))?,
                )),
                _ => return Err(err(ln, "malformed attr line")),
            }
        } else if let Some(rest) = line.strip_prefix("nodes ") {
            nodes_decl = Some((
                ln,
                rest.parse()
                    .map_err(|e| err(ln, format!("bad node count: {e}")))?,
            ));
            break;
        } else {
            return Err(err(ln, "expected `attr …` or `nodes <n>`"));
        }
    }
    let (decl_ln, n_nodes) = nodes_decl.ok_or_else(|| err(last_ln, "missing `nodes` line"))?;
    if attrs.is_empty() {
        return Err(err(decl_ln, "no attributes declared"));
    }
    let schema = Schema::new(attrs, num_classes);

    let mut nodes: Vec<Node> = Vec::with_capacity(n_nodes);
    let mut node_lns: Vec<usize> = Vec::with_capacity(n_nodes);
    for (ln, line) in lines {
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split(' ').collect();
        // node depth D hist H majority M (leaf | test … children …)
        if toks.first() != Some(&"node") || toks.get(1) != Some(&"depth") {
            return Err(err(ln, "expected node line"));
        }
        let depth: u32 = toks
            .get(2)
            .ok_or_else(|| err(ln, "missing depth"))?
            .parse()
            .map_err(|e| err(ln, format!("bad depth: {e}")))?;
        if toks.get(3) != Some(&"hist") {
            return Err(err(ln, "missing hist"));
        }
        let hist: Vec<u64> = toks
            .get(4)
            .ok_or_else(|| err(ln, "missing hist values"))?
            .split(',')
            .map(|t| t.parse().map_err(|e| err(ln, format!("bad hist: {e}"))))
            .collect::<Result<_, _>>()?;
        if hist.len() != num_classes as usize {
            return Err(err(ln, "hist length != classes"));
        }
        if toks.get(5) != Some(&"majority") {
            return Err(err(ln, "missing majority"));
        }
        let majority: u8 = toks
            .get(6)
            .ok_or_else(|| err(ln, "missing majority value"))?
            .parse()
            .map_err(|e| err(ln, format!("bad majority: {e}")))?;

        let mut node = Node::leaf(depth, hist);
        node.majority = majority;
        match toks.get(7) {
            Some(&"leaf") => {}
            Some(&"test") => {
                let kind = *toks.get(8).ok_or_else(|| err(ln, "missing test kind"))?;
                let attr: usize = toks
                    .get(9)
                    .ok_or_else(|| err(ln, "missing test attr"))?
                    .parse()
                    .map_err(|e| err(ln, format!("bad attr: {e}")))?;
                if attr >= schema.num_attrs() {
                    return Err(err(ln, "test attr out of range"));
                }
                let (test, children_idx) = match kind {
                    "cont" => {
                        let bits = u32::from_str_radix(
                            toks.get(10).ok_or_else(|| err(ln, "missing threshold"))?,
                            16,
                        )
                        .map_err(|e| err(ln, format!("bad threshold bits: {e}")))?;
                        let threshold = f32::from_bits(bits);
                        if !threshold.is_finite() {
                            return Err(err(
                                ln,
                                format!(
                                    "non-finite split threshold {threshold} (bits {bits:08x}); \
                                     no classifier in this workspace emits one"
                                ),
                            ));
                        }
                        (SplitTest::Continuous { attr, threshold }, 11)
                    }
                    "cat" => (SplitTest::Categorical { attr }, 10),
                    "subset" => {
                        let mask = u64::from_str_radix(
                            toks.get(10).ok_or_else(|| err(ln, "missing mask"))?,
                            16,
                        )
                        .map_err(|e| err(ln, format!("bad mask: {e}")))?;
                        (
                            SplitTest::CategoricalSubset {
                                attr,
                                left_mask: mask,
                            },
                            11,
                        )
                    }
                    other => return Err(err(ln, format!("unknown test kind {other:?}"))),
                };
                if toks.get(children_idx) != Some(&"children") {
                    return Err(err(ln, "missing children"));
                }
                let children: Vec<u32> = toks
                    .get(children_idx + 1)
                    .ok_or_else(|| err(ln, "missing child ids"))?
                    .split(',')
                    .map(|t| t.parse().map_err(|e| err(ln, format!("bad child id: {e}"))))
                    .collect::<Result<_, _>>()?;
                if children.len() != test.arity(&schema) {
                    return Err(err(ln, "child count does not match test arity"));
                }
                node.test = Some(test);
                node.children = children;
            }
            _ => return Err(err(ln, "expected `leaf` or `test`")),
        }
        nodes.push(node);
        node_lns.push(ln);
    }
    if nodes.len() != n_nodes {
        return Err(err(
            decl_ln,
            format!("declared {n_nodes} nodes but parsed {}", nodes.len()),
        ));
    }
    if nodes.is_empty() {
        return Err(err(decl_ln, "tree must have at least a root node"));
    }
    for (node, &ln) in nodes.iter().zip(&node_lns) {
        for &c in &node.children {
            if c as usize >= nodes.len() {
                return Err(err(ln, format!("child id {c} out of range")));
            }
        }
    }
    Ok(DecisionTree { schema, nodes })
}

/// Read a tree from a file.
pub fn load(path: &Path) -> Result<DecisionTree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, Dataset};
    use crate::split::{CatSplitMode, SplitOptions};
    use crate::sprint::{self, SprintConfig};

    fn mixed_dataset() -> Dataset {
        let schema = Schema::new(
            vec![AttrDef::continuous("x"), AttrDef::categorical("g", 3)],
            2,
        );
        let n = 60usize;
        let xs: Vec<f32> = (0..n).map(|i| ((i * 31) % 97) as f32 / 3.0).collect();
        let gs: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let labels: Vec<u8> = (0..n)
            .map(|i| u8::from(xs[i] > 16.0 || gs[i] == 2))
            .collect();
        Dataset::new(
            schema,
            vec![Column::Continuous(xs), Column::Categorical(gs)],
            labels,
        )
    }

    #[test]
    fn roundtrip_is_exact() {
        let data = mixed_dataset();
        let tree = sprint::induce(&data, &SprintConfig::default());
        let text = to_text(&tree);
        let back = from_text(&text).unwrap();
        assert_eq!(back, tree);
        back.validate();
    }

    #[test]
    fn roundtrip_subset_mode() {
        let data = mixed_dataset();
        let tree = sprint::induce(
            &data,
            &SprintConfig {
                split: SplitOptions {
                    cat_mode: CatSplitMode::BinarySubset,
                    ..SplitOptions::default()
                },
                ..SprintConfig::default()
            },
        );
        let back = from_text(&to_text(&tree)).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn thresholds_roundtrip_bit_exactly() {
        // An awkward float that would lose bits through decimal printing.
        let tree = DecisionTree {
            schema: Schema::new(vec![AttrDef::continuous("x")], 2),
            nodes: vec![
                Node {
                    depth: 0,
                    hist: vec![1, 1],
                    majority: 0,
                    test: Some(SplitTest::Continuous {
                        attr: 0,
                        threshold: f32::from_bits(0x3f99_999a), // 1.2000000476…
                    }),
                    children: vec![1, 2],
                },
                Node::leaf(1, vec![1, 0]),
                Node::leaf(1, vec![0, 1]),
            ],
        };
        let back = from_text(&to_text(&tree)).unwrap();
        match back.nodes[0].test {
            Some(SplitTest::Continuous { threshold, .. }) => {
                assert_eq!(threshold.to_bits(), 0x3f99_999a);
            }
            _ => panic!("wrong test"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let data = mixed_dataset();
        let tree = sprint::induce(&data, &SprintConfig::default());
        let dir = std::env::temp_dir().join("scalparc-model-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tree");
        save(&tree, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, tree);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_text("nonsense v9\n").unwrap_err().contains("header"));
    }

    #[test]
    fn rejects_wrong_hist_length() {
        let text = "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 1\n\
                    node depth 0 hist 1,2,3 majority 0 leaf\n";
        assert!(from_text(text).unwrap_err().contains("hist length"));
    }

    #[test]
    fn rejects_out_of_range_children() {
        let text = "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 1\n\
                    node depth 0 hist 1,1 majority 0 test cont 0 3f800000 children 5,6\n";
        assert!(from_text(text).unwrap_err().contains("out of range"));
    }

    #[test]
    fn rejects_non_finite_thresholds_with_line_number() {
        // 7fc00000 = NaN, 7f800000 = +inf, ff800000 = -inf.
        for bits in ["7fc00000", "7f800000", "ff800000"] {
            let text = format!(
                "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 3\n\
                 node depth 0 hist 1,1 majority 0 test cont 0 {bits} children 1,2\n\
                 node depth 1 hist 1,0 majority 0 leaf\n\
                 node depth 1 hist 0,1 majority 1 leaf\n"
            );
            let e = from_text(&text).unwrap_err();
            assert!(e.starts_with("line 5:"), "{e}");
            assert!(e.contains("non-finite"), "{e}");
        }
    }

    #[test]
    fn rejects_arity_mismatch() {
        let text = "scalparc-tree v1\nclasses 2\nattr categorical g 3\nnodes 1\n\
                    node depth 0 hist 1,1 majority 0 test cat 0 children 1,2\n";
        assert!(from_text(text).unwrap_err().contains("arity"));
    }

    #[test]
    fn rejects_empty_tree() {
        let text = "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 0\n";
        assert!(from_text(text).unwrap_err().contains("at least a root"));
    }

    #[test]
    #[should_panic(expected = "cannot be persisted")]
    fn rejects_spaced_attribute_names_on_save() {
        use crate::tree::Node;
        let tree = DecisionTree {
            schema: Schema::new(vec![AttrDef::continuous("my attr")], 2),
            nodes: vec![Node::leaf(0, vec![1, 0])],
        };
        to_text(&tree);
    }

    #[test]
    fn rejects_node_count_mismatch() {
        let text = "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 2\n\
                    node depth 0 hist 1,1 majority 0 leaf\n";
        assert!(from_text(text).unwrap_err().contains("declared 2 nodes"));
    }

    #[test]
    fn every_error_carries_the_offending_line_number() {
        assert!(from_text("").unwrap_err().starts_with("line 1:"));
        let e = from_text("scalparc-tree v1\n").unwrap_err();
        assert!(e.starts_with("line 2:"), "{e}");
        // Wrong node count points at the `nodes` declaration line.
        let e = from_text(
            "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 2\n\
             node depth 0 hist 1,1 majority 0 leaf\n",
        )
        .unwrap_err();
        assert!(e.starts_with("line 4:"), "{e}");
        // An out-of-range child points at its node's line.
        let e = from_text(
            "scalparc-tree v1\nclasses 2\nattr continuous x\nnodes 1\n\
             node depth 0 hist 1,1 majority 0 test cont 0 3f800000 children 5,6\n",
        )
        .unwrap_err();
        assert!(e.starts_with("line 5:"), "{e}");
        // A truncated document points past its last line.
        let e = from_text("scalparc-tree v1\nclasses 2\nattr continuous x\n").unwrap_err();
        assert!(e.starts_with("line 3:") && e.contains("nodes"), "{e}");
    }

    #[test]
    fn loaded_model_predicts_identically() {
        let data = mixed_dataset();
        let tree = sprint::induce(&data, &SprintConfig::default());
        let back = from_text(&to_text(&tree)).unwrap();
        for rid in 0..data.len() {
            assert_eq!(tree.predict(&data, rid), back.predict(&data, rid));
        }
    }
}

#[cfg(test)]
mod roundtrip_proptests {
    use super::*;
    use crate::flat::FlatTree;
    use crate::testgen::{self, TestRng};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48 })]

        // save → load → save is byte-identical across arbitrary tree shapes
        // (deep chains, categorical fans, subset masks, awkward thresholds),
        // and the reloaded model compiles to the identical flat tree — the
        // persistence guarantee the serving path depends on.
        #[test]
        fn save_load_save_is_byte_identical(seed in 0u64..(1u64 << 48)) {
            let mut rng = TestRng::new(seed);
            let schema = testgen::random_schema(&mut rng);
            let tree = testgen::random_tree(&schema, &mut rng, 6, 150);
            let text = to_text(&tree);
            let back = from_text(&text).unwrap();
            prop_assert_eq!(&back, &tree);
            prop_assert_eq!(to_text(&back), text);
            prop_assert_eq!(FlatTree::compile(&back), FlatTree::compile(&tree));
        }
    }
}
