//! Fast hashing for record-id keyed maps.
//!
//! The serial SPRINT splitting phase probes a record-id → child map once
//! per attribute-list entry — hundreds of millions of probes on large
//! inputs — so the default SipHash is a significant cost. Record ids are
//! dense machine integers with no adversarial source, so a multiply-shift
//! (Fibonacci) hash is both sufficient and several times faster.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-shift hasher for integer keys.
#[derive(Default)]
pub struct RidHasher(u64);

impl Hasher for RidHasher {
    #[inline]
    fn write_u32(&mut self, k: u32) {
        self.0 = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u64(&mut self, k: u64) {
        self.0 = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a) so derived Hash impls still work.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x1_0000_01b3);
        }
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `HashMap` keyed by record ids with the fast hasher.
pub type RidMap<V> = HashMap<u32, V, BuildHasherDefault<RidHasher>>;

/// Empty [`RidMap`] with capacity.
pub fn rid_map_with_capacity<V>(capacity: usize) -> RidMap<V> {
    RidMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: RidMap<u8> = rid_map_with_capacity(16);
        for k in 0..1000u32 {
            m.insert(k, (k % 7) as u8);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u32 {
            assert_eq!(m[&k], (k % 7) as u8);
        }
        assert_eq!(m.get(&5000), None);
    }

    #[test]
    fn distinct_keys_hash_distinctly() {
        // Multiply-shift by an odd constant is injective on u64, so no two
        // u32 keys collide in the full hash (bucket collisions remain
        // possible and are the map's job).
        let hash = |k: u32| {
            let mut h = RidHasher::default();
            h.write_u32(k);
            h.finish()
        };
        let a: Vec<u64> = (0..64).map(hash).collect();
        let mut b = a.clone();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn byte_fallback_works() {
        let mut m: HashMap<String, u8, BuildHasherDefault<RidHasher>> = HashMap::default();
        m.insert("alpha".into(), 1);
        m.insert("beta".into(), 2);
        assert_eq!(m["alpha"], 1);
        assert_eq!(m["beta"], 2);
    }
}
