//! Attribute lists — the vertical fragmentation of the training set
//! (paper §2): one list per attribute holding `(value, record id, class)`
//! triples, with continuous lists sorted on value **once** at the start
//! (the SPRINT/ScalParC presort) and kept sorted by every subsequent split.

use crate::data::{AttrKind, Column, Dataset};

/// Bytes of one packed attribute-list record: 4 (value) + 4 (rid) +
/// 2 (class) with no padding. The in-memory layout, the collective wire
/// format (`size_of`-based charging in mpsim), and the out-of-core disk
/// encoding all share this size, so the memory ledgers, the comm-volume
/// ledgers, and the spill files agree byte for byte.
pub const PACKED_ENTRY_BYTES: usize = 10;

/// Entry of a continuous attribute list.
///
/// One packed `#[repr(C)]` layout shared with [`CatEntry`] (only the value
/// field's interpretation differs): `packed(2)` drops the natural 4-byte
/// alignment so the u16 class field does not pad the record back to 12
/// bytes. Fields must therefore be read by copy (`let v = e.value;`), never
/// by reference — the compiler rejects misaligned borrows.
#[repr(C, packed(2))]
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContEntry {
    /// Attribute value.
    pub value: f32,
    /// Global record id.
    pub rid: u32,
    /// Class label of the record (u8 range; u16 keeps 2-byte alignment).
    pub class: u16,
}

/// Entry of a categorical attribute list (same packed layout as
/// [`ContEntry`], value is the domain index).
#[repr(C, packed(2))]
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CatEntry {
    /// Attribute value (domain index).
    pub value: u32,
    /// Global record id.
    pub rid: u32,
    /// Class label of the record (u8 range; u16 keeps 2-byte alignment).
    pub class: u16,
}

// The packed size is load-bearing for every byte ledger; lock it down.
const _: () = assert!(std::mem::size_of::<ContEntry>() == PACKED_ENTRY_BYTES);
const _: () = assert!(std::mem::size_of::<CatEntry>() == PACKED_ENTRY_BYTES);
const _: () = assert!(std::mem::align_of::<ContEntry>() == 2);
const _: () = assert!(std::mem::align_of::<CatEntry>() == 2);

/// One attribute list.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrList {
    /// Sorted-by-value list of a continuous attribute.
    Continuous(Vec<ContEntry>),
    /// List of a categorical attribute (record order).
    Categorical(Vec<CatEntry>),
}

impl AttrList {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            AttrList::Continuous(v) => v.len(),
            AttrList::Categorical(v) => v.len(),
        }
    }

    /// True when the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes (for memory accounting): the packed record size, which
    /// `size_of` now reports exactly (no padding), times the entry count.
    pub fn bytes(&self) -> u64 {
        (self.len() * PACKED_ENTRY_BYTES) as u64
    }

    /// The continuous entries; panics on a categorical list.
    pub fn as_continuous(&self) -> &[ContEntry] {
        match self {
            AttrList::Continuous(v) => v,
            AttrList::Categorical(_) => panic!("list is categorical"),
        }
    }

    /// The categorical entries; panics on a continuous list.
    pub fn as_categorical(&self) -> &[CatEntry] {
        match self {
            AttrList::Categorical(v) => v,
            AttrList::Continuous(_) => panic!("list is continuous"),
        }
    }

    /// Record ids in list order.
    pub fn rids(&self) -> Vec<u32> {
        match self {
            AttrList::Continuous(v) => v.iter().map(|e| e.rid).collect(),
            AttrList::Categorical(v) => v.iter().map(|e| e.rid).collect(),
        }
    }

    /// Verify the sorted-order invariant of continuous lists.
    pub fn assert_sorted(&self) {
        if let AttrList::Continuous(v) = self {
            assert!(
                v.windows(2).all(|w| {
                    let (a, b) = (w[0].value, w[1].value);
                    a <= b
                }),
                "continuous attribute list lost its sort order"
            );
        }
    }
}

/// Sort a continuous list by `(value, rid)` — the canonical presort order
/// (the rid tiebreak makes every implementation bit-deterministic).
pub fn sort_cont(entries: &mut [ContEntry]) {
    entries.sort_unstable_by(|a, b| {
        let (av, bv, ar, br) = (a.value, b.value, a.rid, b.rid);
        av.total_cmp(&bv).then(ar.cmp(&br))
    });
}

/// Build the attribute lists of `data`, assigning record ids
/// `rid_offset..rid_offset + N`. Continuous lists are presorted when
/// `presort` is set (serial SPRINT sorts here; the parallel code sorts with
/// the distributed sample sort instead).
pub fn build_lists(data: &Dataset, rid_offset: u32, presort: bool) -> Vec<AttrList> {
    data.columns
        .iter()
        .zip(&data.schema.attrs)
        .map(|(col, def)| match (col, def.kind) {
            (Column::Continuous(vals), AttrKind::Continuous) => {
                let mut entries: Vec<ContEntry> = vals
                    .iter()
                    .enumerate()
                    .map(|(i, &value)| ContEntry {
                        value,
                        rid: rid_offset + i as u32,
                        class: data.labels[i] as u16,
                    })
                    .collect();
                if presort {
                    sort_cont(&mut entries);
                }
                AttrList::Continuous(entries)
            }
            (Column::Categorical(vals), AttrKind::Categorical { .. }) => AttrList::Categorical(
                vals.iter()
                    .enumerate()
                    .map(|(i, &value)| CatEntry {
                        value,
                        rid: rid_offset + i as u32,
                        class: data.labels[i] as u16,
                    })
                    .collect(),
            ),
            _ => unreachable!("dataset validated shape"),
        })
        .collect()
}

/// Class histogram of any attribute list (all lists of a node agree).
pub fn class_hist(list: &AttrList, num_classes: usize) -> Vec<u64> {
    let mut h = vec![0u64; num_classes];
    match list {
        AttrList::Continuous(v) => {
            for e in v {
                h[e.class as usize] += 1;
            }
        }
        AttrList::Categorical(v) => {
            for e in v {
                h[e.class as usize] += 1;
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{AttrDef, Schema};

    fn toy() -> Dataset {
        let schema = Schema::new(
            vec![AttrDef::continuous("x"), AttrDef::categorical("g", 3)],
            2,
        );
        Dataset::new(
            schema,
            vec![
                Column::Continuous(vec![3.0, 1.0, 2.0, 1.0]),
                Column::Categorical(vec![2, 0, 1, 0]),
            ],
            vec![1, 0, 0, 1],
        )
    }

    #[test]
    fn build_presorts_continuous() {
        let lists = build_lists(&toy(), 0, true);
        let cont = lists[0].as_continuous();
        assert_eq!(
            cont.iter().map(|e| (e.value, e.rid)).collect::<Vec<_>>(),
            vec![(1.0, 1), (1.0, 3), (2.0, 2), (3.0, 0)]
        );
        // Classes ride along with their records.
        assert_eq!(cont[0].class, 0);
        assert_eq!(cont[1].class, 1);
        lists[0].assert_sorted();
    }

    #[test]
    fn build_keeps_categorical_record_order() {
        let lists = build_lists(&toy(), 0, true);
        let cat = lists[1].as_categorical();
        assert_eq!(
            cat.iter().map(|e| (e.value, e.rid)).collect::<Vec<_>>(),
            vec![(2, 0), (0, 1), (1, 2), (0, 3)]
        );
    }

    #[test]
    fn rid_offset_applies() {
        let lists = build_lists(&toy(), 100, false);
        assert!(lists[1].as_categorical().iter().all(|e| e.rid >= 100));
    }

    #[test]
    fn class_hist_consistent_across_lists() {
        let lists = build_lists(&toy(), 0, true);
        assert_eq!(class_hist(&lists[0], 2), vec![2, 2]);
        assert_eq!(class_hist(&lists[1], 2), vec![2, 2]);
    }

    #[test]
    fn bytes_and_len() {
        let lists = build_lists(&toy(), 0, true);
        assert_eq!(lists[0].len(), 4);
        assert!(!lists[0].is_empty());
        assert_eq!(
            lists[0].bytes(),
            4 * std::mem::size_of::<ContEntry>() as u64
        );
    }

    #[test]
    #[should_panic(expected = "lost its sort order")]
    fn assert_sorted_catches_violation() {
        let l = AttrList::Continuous(vec![
            ContEntry {
                value: 2.0,
                rid: 0,
                class: 0,
            },
            ContEntry {
                value: 1.0,
                rid: 1,
                class: 0,
            },
        ]);
        l.assert_sorted();
    }
}

#[cfg(test)]
mod split_consistency_tests {
    use super::*;
    use crate::data::{AttrDef, Column, Schema};

    /// The invariant the splitting phase must uphold (paper §2): after any
    /// consistent split, every attribute list of a child covers exactly the
    /// same record-id set.
    #[test]
    fn consistent_assignment_across_lists() {
        let schema = Schema::new(
            vec![
                AttrDef::continuous("x"),
                AttrDef::continuous("y"),
                AttrDef::categorical("g", 4),
            ],
            2,
        );
        let n = 64usize;
        let xs: Vec<f32> = (0..n).map(|i| ((i * 37) % n) as f32).collect();
        let ys: Vec<f32> = (0..n).map(|i| ((i * 11) % n) as f32).collect();
        let gs: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let data = Dataset::new(
            schema,
            vec![
                Column::Continuous(xs),
                Column::Continuous(ys),
                Column::Categorical(gs),
            ],
            labels,
        );
        let lists = build_lists(&data, 0, true);

        // Route by an arbitrary rule on record id, split every list, and
        // verify rid-set agreement per child.
        let child_of = |rid: u32| (rid % 3) as usize;
        let mut per_child_sets: Vec<Vec<std::collections::BTreeSet<u32>>> = Vec::new();
        for list in &lists {
            let mut sets = vec![std::collections::BTreeSet::new(); 3];
            match list {
                AttrList::Continuous(v) => {
                    for e in v {
                        sets[child_of(e.rid)].insert(e.rid);
                    }
                }
                AttrList::Categorical(v) => {
                    for e in v {
                        sets[child_of(e.rid)].insert(e.rid);
                    }
                }
            }
            per_child_sets.push(sets);
        }
        for (c, set) in per_child_sets[0].iter().enumerate() {
            assert_eq!(set, &per_child_sets[1][c]);
            assert_eq!(set, &per_child_sets[2][c]);
        }
    }

    #[test]
    fn sort_cont_is_total_order_with_rid_tiebreak() {
        let mut entries = vec![
            ContEntry {
                value: 2.0,
                rid: 5,
                class: 0,
            },
            ContEntry {
                value: 1.0,
                rid: 9,
                class: 1,
            },
            ContEntry {
                value: 2.0,
                rid: 1,
                class: 0,
            },
            ContEntry {
                value: 1.0,
                rid: 2,
                class: 1,
            },
        ];
        sort_cont(&mut entries);
        let order: Vec<(f32, u32)> = entries.iter().map(|e| (e.value, e.rid)).collect();
        assert_eq!(order, vec![(1.0, 2), (1.0, 9), (2.0, 1), (2.0, 5)]);
    }
}
