//! Compiled forest serving: a vector of [`FlatTree`]s scored as **one
//! model** behind a single batched entry point, with the per-tree outputs
//! combined by a vote reduce.
//!
//! The aggregation mirrors the forest-of-trees `predict` shape of serving
//! systems like omikuji: every tree scores the whole batch through its own
//! level-synchronous kernel (so each tree's node arrays stream exactly as
//! they do for a single-tree server), and the per-record combine is a tight
//! second pass over a `batch × classes` accumulator. Two reduces are
//! supported:
//!
//! * [`VoteReduce::Majority`] — one vote per tree (its predicted class);
//!   ties break to the **lowest class index**, the same rule
//!   [`crate::tree::majority_class`] applies inside a node, so a 1-tree
//!   forest is exactly its tree.
//! * [`VoteReduce::ProbAverage`] — average of the trees' **leaf class
//!   distributions** (the training-set class mix at the terminal leaf,
//!   normalized). Trees report leaf *ids* via
//!   [`FlatTree::predict_leaves_range`] and the distributions live in a
//!   side table aligned by [`FlatTree::bfs_order`]; ties again break to the
//!   lowest class index.
//!
//! Both reduces are deterministic: the accumulation order is the tree
//! order, fixed at compile time.

use crate::data::{Dataset, Schema};
use crate::flat::FlatTree;
use crate::tree::DecisionTree;

/// How per-tree outputs are combined into the forest's prediction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VoteReduce {
    /// One vote per tree (its predicted class); ties → lowest class index.
    #[default]
    Majority,
    /// Average of per-leaf class distributions; ties → lowest class index.
    ProbAverage,
}

/// A forest compiled for batched inference: one [`FlatTree`] per member
/// plus per-tree leaf-distribution side tables. Build one with
/// [`FlatForest::compile`].
#[derive(Clone, Debug, PartialEq)]
pub struct FlatForest {
    schema: Schema,
    trees: Vec<FlatTree>,
    /// Per tree: a `nodes × classes` row-major table of normalized class
    /// distributions, indexed by **flat** node id (only leaf rows are read
    /// by prediction, but every node has one).
    dist: Vec<Vec<f32>>,
    reduce: VoteReduce,
    /// Trees the forest was *trained* with; `trees.len() < planned` means
    /// this replica votes over a surviving subset (see [`Self::with_missing`]).
    planned: usize,
    /// Fewest member trees this forest should serve with; fewer means the
    /// server ought to report itself degraded ([`Self::below_quorum`]).
    /// `0` (the default) disables the floor.
    quorum_min: usize,
}

impl FlatForest {
    /// Compile the member trees. All trees must share one schema (the
    /// forest scores one dataset shape); panics otherwise, and on an empty
    /// forest.
    pub fn compile(trees: &[DecisionTree], reduce: VoteReduce) -> FlatForest {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        let schema = trees[0].schema.clone();
        let classes = schema.num_classes as usize;
        let mut flats = Vec::with_capacity(trees.len());
        let mut dists = Vec::with_capacity(trees.len());
        for (t, tree) in trees.iter().enumerate() {
            assert!(
                tree.schema == schema,
                "tree {t} was trained under a different schema"
            );
            let order = FlatTree::bfs_order(tree);
            let mut dist = Vec::with_capacity(order.len() * classes);
            for &old in &order {
                let node = &tree.nodes[old as usize];
                let total: u64 = node.hist.iter().sum();
                if total == 0 {
                    // Degenerate empty node (e.g. the root of a tree grown
                    // on no records): fall back to a one-hot on its
                    // majority so the reduce still votes like Majority.
                    for c in 0..classes {
                        dist.push(f32::from(c as u8 == node.majority));
                    }
                } else {
                    for &h in &node.hist {
                        dist.push(h as f32 / total as f32);
                    }
                }
            }
            flats.push(FlatTree::compile(tree));
            dists.push(dist);
        }
        FlatForest {
            schema,
            trees: flats,
            dist: dists,
            reduce,
            planned: trees.len(),
            quorum_min: 0,
        }
    }

    /// Declare the forest was trained with `planned` trees, of which only
    /// the compiled members survived (the partial-load path: compile a
    /// damaged container's survivors, then record the intended size).
    /// Panics if `planned` is smaller than the member count.
    pub fn with_planned(mut self, planned: usize) -> FlatForest {
        assert!(
            planned >= self.trees.len(),
            "planned size {planned} smaller than the {} compiled trees",
            self.trees.len()
        );
        self.planned = planned;
        self
    }

    /// Set the quorum floor: serving with fewer than `quorum_min` member
    /// trees marks the forest [`Self::below_quorum`].
    pub fn with_quorum_min(mut self, quorum_min: usize) -> FlatForest {
        self.quorum_min = quorum_min;
        self
    }

    /// A forest voting over the surviving subset: members whose `mask`
    /// entry is `true` are dropped (their node arrays and distribution
    /// tables freed), `planned` and the quorum floor are preserved. The
    /// vote order of the survivors is unchanged, so the reduce stays
    /// deterministic. Panics when the mask length differs from the member
    /// count or no tree survives.
    pub fn with_missing(&self, mask: &[bool]) -> FlatForest {
        assert_eq!(
            mask.len(),
            self.trees.len(),
            "mask must cover every member tree"
        );
        let keep = |i: &usize| !mask[*i];
        let trees: Vec<FlatTree> = (0..self.trees.len())
            .filter(keep)
            .map(|i| self.trees[i].clone())
            .collect();
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        let dist = (0..self.dist.len())
            .filter(keep)
            .map(|i| self.dist[i].clone())
            .collect();
        FlatForest {
            schema: self.schema.clone(),
            trees,
            dist,
            reduce: self.reduce,
            planned: self.planned,
            quorum_min: self.quorum_min,
        }
    }

    /// Trees the forest was trained with (`>= n_trees()`).
    pub fn planned(&self) -> usize {
        self.planned
    }

    /// Planned trees this replica is serving *without*.
    pub fn missing(&self) -> usize {
        self.planned - self.trees.len()
    }

    /// The configured quorum floor.
    pub fn quorum_min(&self) -> usize {
        self.quorum_min
    }

    /// Whether the surviving member count undercuts the quorum floor.
    pub fn below_quorum(&self) -> bool {
        self.trees.len() < self.quorum_min
    }

    /// The schema the forest was trained under.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The member trees, in vote order.
    pub fn trees(&self) -> &[FlatTree] {
        &self.trees
    }

    /// The configured vote reduce.
    pub fn reduce(&self) -> VoteReduce {
        self.reduce
    }

    /// Heap bytes of the node arrays, mask tables, and distribution side
    /// tables (for memory accounting of per-rank replicas).
    pub fn heap_bytes(&self) -> u64 {
        let trees: u64 = self.trees.iter().map(|t| t.heap_bytes()).sum();
        let dists: u64 = self.dist.iter().map(|d| (d.len() * 4) as u64).sum();
        trees + dists
    }

    /// Score the contiguous record range `[lo, hi)` of `data`; `out[i]`
    /// receives the forest prediction of record `lo + i`. Every tree scores
    /// the range through its batched kernel, then the votes are reduced.
    pub fn predict_range(&self, data: &Dataset, lo: usize, hi: usize, out: &mut [u8]) {
        assert!(lo <= hi && hi <= data.len(), "record range out of bounds");
        assert_eq!(out.len(), hi - lo, "output slice must cover the range");
        if lo == hi {
            return;
        }
        let n = hi - lo;
        let classes = self.schema.num_classes as usize;
        match self.reduce {
            VoteReduce::Majority => {
                let mut votes = vec![0u32; n * classes];
                let mut scratch = vec![0u8; n];
                for tree in &self.trees {
                    tree.predict_range(data, lo, hi, &mut scratch);
                    for (i, &c) in scratch.iter().enumerate() {
                        votes[i * classes + c as usize] += 1;
                    }
                }
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = argmax_lowest(&votes[i * classes..(i + 1) * classes]);
                }
            }
            VoteReduce::ProbAverage => {
                let mut acc = vec![0.0f32; n * classes];
                let mut scratch = vec![0u32; n];
                for (tree, dist) in self.trees.iter().zip(&self.dist) {
                    tree.predict_leaves_range(data, lo, hi, &mut scratch);
                    for (i, &leaf) in scratch.iter().enumerate() {
                        let row = &dist[leaf as usize * classes..(leaf as usize + 1) * classes];
                        for (a, &p) in acc[i * classes..(i + 1) * classes].iter_mut().zip(row) {
                            *a += p;
                        }
                    }
                }
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = argmax_lowest(&acc[i * classes..(i + 1) * classes]);
                }
            }
        }
    }

    /// Score every record of `data` into `out`.
    pub fn predict_batch(&self, data: &Dataset, out: &mut [u8]) {
        assert_eq!(out.len(), data.len(), "output slice must cover the batch");
        self.predict_range(data, 0, data.len(), out);
    }

    /// Predict one record (the low-latency single-record path: per-tree
    /// flat descent plus the same reduce as the batched kernel).
    pub fn predict(&self, data: &Dataset, rid: usize) -> u8 {
        let classes = self.schema.num_classes as usize;
        match self.reduce {
            VoteReduce::Majority => {
                let mut votes = vec![0u32; classes];
                for tree in &self.trees {
                    votes[tree.predict(data, rid) as usize] += 1;
                }
                argmax_lowest(&votes)
            }
            VoteReduce::ProbAverage => {
                let mut acc = vec![0.0f32; classes];
                for (tree, dist) in self.trees.iter().zip(&self.dist) {
                    let leaf = tree.predict_leaf(data, rid) as usize;
                    for (a, &p) in acc
                        .iter_mut()
                        .zip(&dist[leaf * classes..(leaf + 1) * classes])
                    {
                        *a += p;
                    }
                }
                argmax_lowest(&acc)
            }
        }
    }

    /// Fraction of records whose label the forest predicts, through the
    /// batched kernel.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let mut out = vec![0u8; data.len()];
        self.predict_batch(data, &mut out);
        let hits = out.iter().zip(&data.labels).filter(|(p, l)| p == l).count();
        hits as f64 / data.len() as f64
    }
}

/// Index of the largest value; ties break to the lowest index (the same
/// rule as [`crate::tree::majority_class`]).
fn argmax_lowest<T: PartialOrd + Copy>(vals: &[T]) -> u8 {
    let mut best = 0usize;
    for (i, &v) in vals.iter().enumerate().skip(1) {
        if v > vals[best] {
            best = i;
        }
    }
    best as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::{self, TestRng};

    fn forest_fixture(seed: u64, k: usize) -> (Vec<DecisionTree>, Dataset) {
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        let trees = testgen::random_forest(&schema, &mut rng, k, 5, 80);
        let data = testgen::random_dataset(&schema, &mut rng, 300);
        (trees, data)
    }

    /// Per-record oracle: walk every `DecisionTree`, count votes, break
    /// ties to the lowest class.
    fn oracle_majority(trees: &[DecisionTree], data: &Dataset, rid: usize) -> u8 {
        let classes = trees[0].schema.num_classes as usize;
        let mut votes = vec![0u32; classes];
        for tree in trees {
            votes[tree.predict(data, rid) as usize] += 1;
        }
        argmax_lowest(&votes)
    }

    #[test]
    fn majority_matches_oracle_walkers() {
        for seed in [1u64, 2, 3] {
            let (trees, data) = forest_fixture(seed, 5);
            let forest = FlatForest::compile(&trees, VoteReduce::Majority);
            let mut out = vec![0u8; data.len()];
            forest.predict_batch(&data, &mut out);
            for (rid, &got) in out.iter().enumerate() {
                let want = oracle_majority(&trees, &data, rid);
                assert_eq!(got, want, "seed {seed} record {rid}");
                assert_eq!(forest.predict(&data, rid), want);
            }
        }
    }

    #[test]
    fn single_tree_forest_is_its_tree() {
        let (trees, data) = forest_fixture(7, 1);
        let flat = FlatTree::compile(&trees[0]);
        for reduce in [VoteReduce::Majority, VoteReduce::ProbAverage] {
            let forest = FlatForest::compile(&trees, reduce);
            let mut out = vec![0u8; data.len()];
            forest.predict_batch(&data, &mut out);
            let mut want = vec![0u8; data.len()];
            flat.predict_batch(&data, &mut want);
            // ProbAverage of one tree picks each leaf's distribution argmax,
            // which is the leaf's majority = the tree's prediction.
            assert_eq!(out, want, "{reduce:?}");
        }
    }

    #[test]
    fn prob_average_batch_matches_single_record_path() {
        for seed in [11u64, 12] {
            let (trees, data) = forest_fixture(seed, 4);
            let forest = FlatForest::compile(&trees, VoteReduce::ProbAverage);
            let mut out = vec![0u8; data.len()];
            forest.predict_batch(&data, &mut out);
            for (rid, &got) in out.iter().enumerate() {
                assert_eq!(got, forest.predict(&data, rid), "record {rid}");
            }
        }
    }

    #[test]
    fn range_matches_batch() {
        let (trees, data) = forest_fixture(21, 3);
        let forest = FlatForest::compile(&trees, VoteReduce::Majority);
        let mut full = vec![0u8; data.len()];
        forest.predict_batch(&data, &mut full);
        let mut part = vec![0u8; 100];
        forest.predict_range(&data, 50, 150, &mut part);
        assert_eq!(&full[50..150], &part[..]);
        forest.predict_range(&data, 10, 10, &mut []);
    }

    #[test]
    fn majority_ties_break_to_lowest_class() {
        // Two single-leaf trees voting for different classes: 1 vote each,
        // the lower class index must win.
        use crate::data::AttrDef;
        use crate::tree::Node;
        let schema = Schema::new(vec![AttrDef::continuous("x")], 3);
        let leaf = |class: u8| {
            let mut hist = vec![0u64; 3];
            hist[class as usize] = 5;
            let mut node = Node::leaf(0, hist);
            node.majority = class;
            DecisionTree {
                schema: schema.clone(),
                nodes: vec![node],
            }
        };
        let trees = vec![leaf(2), leaf(1)];
        let mut rng = TestRng::new(0);
        let data = testgen::random_dataset(&schema, &mut rng, 10);
        for reduce in [VoteReduce::Majority, VoteReduce::ProbAverage] {
            let forest = FlatForest::compile(&trees, reduce);
            let mut out = vec![9u8; data.len()];
            forest.predict_batch(&data, &mut out);
            assert!(out.iter().all(|&c| c == 1), "{reduce:?}: {out:?}");
        }
    }

    #[test]
    fn accuracy_and_heap_bytes() {
        let (trees, data) = forest_fixture(31, 4);
        let forest = FlatForest::compile(&trees, VoteReduce::Majority);
        let acc = forest.accuracy(&data);
        assert!((0.0..=1.0).contains(&acc));
        assert!(forest.heap_bytes() > trees.len() as u64);
        assert_eq!(forest.n_trees(), 4);
        assert_eq!(forest.trees().len(), 4);
    }

    #[test]
    #[should_panic(expected = "different schema")]
    fn rejects_mixed_schemas() {
        let (mut trees, _) = forest_fixture(41, 2);
        let mut rng = TestRng::new(99);
        let other = testgen::random_schema(&mut rng);
        trees[1] = testgen::random_tree(&other, &mut rng, 3, 20);
        // The two random schemas differ with overwhelming probability for
        // this seed; compile must refuse the mix.
        FlatForest::compile(&trees, VoteReduce::Majority);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn rejects_empty_forest() {
        FlatForest::compile(&[], VoteReduce::Majority);
    }

    #[test]
    fn with_missing_votes_like_the_surviving_subset() {
        let (trees, data) = forest_fixture(51, 5);
        let mask = [false, true, false, true, false];
        let survivors: Vec<DecisionTree> = (0..trees.len())
            .filter(|&i| !mask[i])
            .map(|i| trees[i].clone())
            .collect();
        for reduce in [VoteReduce::Majority, VoteReduce::ProbAverage] {
            let full = FlatForest::compile(&trees, reduce).with_quorum_min(4);
            let partial = full.with_missing(&mask);
            assert_eq!(partial.n_trees(), 3);
            assert_eq!(partial.planned(), 5);
            assert_eq!(partial.missing(), 2);
            assert_eq!(partial.quorum_min(), 4);
            assert!(partial.below_quorum());
            assert!(!full.below_quorum());
            let subset = FlatForest::compile(&survivors, reduce);
            let mut got = vec![0u8; data.len()];
            partial.predict_batch(&data, &mut got);
            let mut want = vec![0u8; data.len()];
            subset.predict_batch(&data, &mut want);
            assert_eq!(got, want, "{reduce:?}");
        }
    }

    #[test]
    fn with_planned_records_the_intended_size() {
        let (trees, _) = forest_fixture(61, 3);
        let f = FlatForest::compile(&trees[..2], VoteReduce::Majority).with_planned(3);
        assert_eq!(f.planned(), 3);
        assert_eq!(f.missing(), 1);
        assert!(!f.below_quorum());
        assert!(f.with_quorum_min(3).below_quorum());
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn with_missing_rejects_dropping_everything() {
        let (trees, _) = forest_fixture(71, 2);
        FlatForest::compile(&trees, VoteReduce::Majority).with_missing(&[true, true]);
    }

    #[test]
    #[should_panic(expected = "cover every member tree")]
    fn with_missing_rejects_short_masks() {
        let (trees, _) = forest_fixture(81, 3);
        FlatForest::compile(&trees, VoteReduce::Majority).with_missing(&[true]);
    }
}
