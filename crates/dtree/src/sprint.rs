//! Serial SPRINT (Shafer, Agrawal & Mehta, VLDB 1996) — the sequential
//! classifier ScalParC parallelizes (paper §2).
//!
//! Continuous attributes are sorted **once** during presort; the splitting
//! phase keeps every list sorted by splitting stably. Consistent assignment
//! of the non-splitting attribute lists uses a record-id → child hash table
//! built per node from the splitting attribute's list — the structure whose
//! replication makes parallel SPRINT unscalable and whose distribution is
//! ScalParC's contribution.
//!
//! Induction proceeds level by level (breadth-first) and assigns node ids in
//! a canonical order, so trees from every classifier in this workspace can
//! be compared for exact equality.

use crate::data::{AttrKind, Dataset, Schema};
use crate::gini::{ContinuousScan, CountMatrix};
use crate::hashutil::{rid_map_with_capacity, RidMap};
use crate::list::{build_lists, AttrList, CatEntry, ContEntry};
use crate::split::{categorical_candidate, SplitOptions};
use crate::tree::{majority_class, BestSplit, DecisionTree, Node, SplitTest, StopRules};

/// Configuration of serial SPRINT induction.
#[derive(Clone, Copy, Debug, Default)]
pub struct SprintConfig {
    /// Stopping rules applied in the split-determining phase.
    pub stop: StopRules,
    /// Candidate generation options (categorical mode, criterion).
    pub split: SplitOptions,
}

/// Counters describing an induction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InductionStats {
    /// Number of tree levels processed (root level = 1).
    pub levels: u32,
    /// Largest number of simultaneously active (split-candidate) nodes.
    pub max_active_nodes: usize,
    /// Largest record-id → child hash table built for a single node; for the
    /// root this is `N`, the paper's memory-pressure argument.
    pub max_hash_entries: usize,
    /// Total records moved through hash probes during splitting.
    pub hash_probes: u64,
}

/// Work item: one active node and its attribute lists.
struct Work {
    node_id: u32,
    depth: u32,
    hist: Vec<u64>,
    lists: Vec<AttrList>,
}

/// Induce a decision tree with serial SPRINT.
pub fn induce(data: &Dataset, cfg: &SprintConfig) -> DecisionTree {
    induce_with_stats(data, cfg).0
}

/// Induce a tree, also returning run statistics.
pub fn induce_with_stats(data: &Dataset, cfg: &SprintConfig) -> (DecisionTree, InductionStats) {
    let schema = data.schema.clone();
    let mut stats = InductionStats::default();

    let mut nodes = vec![Node::leaf(0, data.class_hist())];
    let mut level: Vec<Work> = Vec::new();
    if !data.is_empty() && !cfg.stop.pre_split_leaf(&nodes[0].hist, 0) {
        // Presort: the one-time sort of continuous attributes.
        level.push(Work {
            node_id: 0,
            depth: 0,
            hist: nodes[0].hist.clone(),
            lists: build_lists(data, 0, true),
        });
    }

    while !level.is_empty() {
        stats.levels += 1;
        stats.max_active_nodes = stats.max_active_nodes.max(level.len());
        let mut next: Vec<Work> = Vec::new();
        for work in level {
            let parent_gini = cfg.split.criterion.impurity(&work.hist);
            let best = find_best_split(&schema, &work, cfg.split);
            let split = match best {
                Some(b) if !cfg.stop.insufficient_gain(parent_gini, b.gini) => b,
                _ => continue, // node stays a leaf
            };

            let arity = split.test.arity(&schema);
            // Split the splitting attribute's list directly and build the
            // record-id → child hash table from it.
            let split_attr = split.test.attr();
            let (hash, child_hists) =
                build_node_table(&work.lists[split_attr], &split.test, arity, work.hist.len());
            stats.max_hash_entries = stats.max_hash_entries.max(hash.len());

            // Split every attribute list consistently.
            let mut child_lists: Vec<Vec<AttrList>> = (0..arity).map(|_| Vec::new()).collect();
            for (a, list) in work.lists.into_iter().enumerate() {
                let parts = split_list(list, arity, |rid| {
                    if a == split_attr {
                        // The splitting list could route directly, but the
                        // hash probe is equivalent and keeps one code path.
                        hash[&rid] as usize
                    } else {
                        stats.hash_probes += 1;
                        hash[&rid] as usize
                    }
                });
                for (c, part) in parts.into_iter().enumerate() {
                    child_lists[c].push(part);
                }
            }

            // Create children in canonical order.
            let parent_majority = nodes[work.node_id as usize].majority;
            let mut children = Vec::with_capacity(arity);
            for (hist, lists) in child_hists.into_iter().zip(child_lists) {
                let id = nodes.len() as u32;
                let n: u64 = hist.iter().sum();
                let mut child = Node::leaf(work.depth + 1, hist.clone());
                if n == 0 {
                    // Empty partition: predict the parent's majority.
                    child.majority = parent_majority;
                }
                nodes.push(child);
                children.push(id);
                if n > 0 && !cfg.stop.pre_split_leaf(&hist, work.depth + 1) {
                    next.push(Work {
                        node_id: id,
                        depth: work.depth + 1,
                        hist,
                        lists,
                    });
                }
            }
            let parent = &mut nodes[work.node_id as usize];
            parent.test = Some(split.test);
            parent.children = children;
        }
        level = next;
    }

    let tree = DecisionTree { schema, nodes };
    (tree, stats)
}

/// Split-determining phase for one node: scan continuous lists, build count
/// matrices for categorical lists, return the best candidate.
fn find_best_split(schema: &Schema, work: &Work, opts: SplitOptions) -> Option<BestSplit> {
    let mut best: Option<BestSplit> = None;
    for (attr, list) in work.lists.iter().enumerate() {
        let candidate = match (&schema.attrs[attr].kind, list) {
            (AttrKind::Continuous, AttrList::Continuous(entries)) => {
                let mut scan =
                    ContinuousScan::fresh(work.hist.clone()).with_criterion(opts.criterion);
                for e in entries {
                    scan.push(e.value, e.class as u8);
                }
                scan.best().map(|c| BestSplit {
                    gini: c.gini,
                    test: SplitTest::Continuous {
                        attr,
                        threshold: c.threshold,
                    },
                })
            }
            (AttrKind::Categorical { cardinality }, AttrList::Categorical(entries)) => {
                let mut m = CountMatrix::new(*cardinality as usize, work.hist.len());
                for e in entries {
                    m.add(e.value as usize, e.class as usize);
                }
                categorical_candidate(attr, &m, opts)
            }
            _ => unreachable!("list kind matches schema"),
        };
        best = BestSplit::better(best, candidate);
    }
    best
}

/// Build the record-id → child mapping (SPRINT's per-node hash table) from
/// the splitting attribute's list, along with per-child class histograms.
fn build_node_table(
    list: &AttrList,
    test: &SplitTest,
    arity: usize,
    classes: usize,
) -> (RidMap<u8>, Vec<Vec<u64>>) {
    let mut hash = rid_map_with_capacity(list.len());
    let mut hists = vec![vec![0u64; classes]; arity];
    match (list, test) {
        (AttrList::Continuous(entries), SplitTest::Continuous { threshold, .. }) => {
            for e in entries {
                let child = usize::from(e.value >= *threshold);
                hash.insert(e.rid, child as u8);
                hists[child][e.class as usize] += 1;
            }
        }
        (AttrList::Categorical(entries), SplitTest::Categorical { .. }) => {
            for e in entries {
                let child = e.value as usize;
                hash.insert(e.rid, child as u8);
                hists[child][e.class as usize] += 1;
            }
        }
        (AttrList::Categorical(entries), SplitTest::CategoricalSubset { left_mask, .. }) => {
            for e in entries {
                let child = usize::from((left_mask >> e.value) & 1 == 0);
                hash.insert(e.rid, child as u8);
                hists[child][e.class as usize] += 1;
            }
        }
        _ => panic!("splitting list kind does not match the test"),
    }
    (hash, hists)
}

/// Stable partition of a list into `arity` children via `child_of(rid)`;
/// preserves the sorted order of continuous lists.
fn split_list(
    list: AttrList,
    arity: usize,
    mut child_of: impl FnMut(u32) -> usize,
) -> Vec<AttrList> {
    match list {
        AttrList::Continuous(entries) => {
            let mut parts: Vec<Vec<ContEntry>> = (0..arity).map(|_| Vec::new()).collect();
            for e in entries {
                parts[child_of(e.rid)].push(e);
            }
            parts.into_iter().map(AttrList::Continuous).collect()
        }
        AttrList::Categorical(entries) => {
            let mut parts: Vec<Vec<CatEntry>> = (0..arity).map(|_| Vec::new()).collect();
            for e in entries {
                parts[child_of(e.rid)].push(e);
            }
            parts.into_iter().map(AttrList::Categorical).collect()
        }
    }
}

/// Recompute the majority histogram of children and update a freshly split
/// parent — exposed for reuse by other classifiers' tests.
pub fn child_majorities(hists: &[Vec<u64>]) -> Vec<u8> {
    hists.iter().map(|h| majority_class(h)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{AttrDef, Column, Schema};

    /// 8 records cleanly separable on x at 4.5.
    fn separable() -> Dataset {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        Dataset::new(
            schema,
            vec![Column::Continuous(vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0,
            ])],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
    }

    #[test]
    fn separable_data_gives_one_split() {
        let (tree, stats) = induce_with_stats(&separable(), &SprintConfig::default());
        tree.validate();
        assert_eq!(tree.nodes.len(), 3);
        assert_eq!(
            tree.root().test,
            Some(SplitTest::Continuous {
                attr: 0,
                threshold: 4.5
            })
        );
        assert_eq!(tree.accuracy(&separable()), 1.0);
        assert_eq!(stats.levels, 1);
        assert_eq!(stats.max_hash_entries, 8);
    }

    #[test]
    fn categorical_split() {
        let schema = Schema::new(vec![AttrDef::categorical("g", 3)], 2);
        let data = Dataset::new(
            schema,
            vec![Column::Categorical(vec![0, 0, 1, 1, 2, 2])],
            vec![0, 0, 1, 1, 0, 0],
        );
        let tree = induce(&data, &SprintConfig::default());
        tree.validate();
        assert_eq!(tree.root().test, Some(SplitTest::Categorical { attr: 0 }));
        assert_eq!(tree.root().children.len(), 3);
        assert_eq!(tree.accuracy(&data), 1.0);
    }

    #[test]
    fn pure_data_stays_single_leaf() {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let data = Dataset::new(
            schema,
            vec![Column::Continuous(vec![1.0, 2.0, 3.0])],
            vec![1, 1, 1],
        );
        let tree = induce(&data, &SprintConfig::default());
        assert_eq!(tree.nodes.len(), 1);
        assert!(tree.root().is_leaf());
        assert_eq!(tree.root().majority, 1);
    }

    #[test]
    fn unseparable_data_stays_leaf() {
        // Identical attribute values, mixed classes: no candidate exists.
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let data = Dataset::new(
            schema,
            vec![Column::Continuous(vec![5.0, 5.0, 5.0, 5.0])],
            vec![0, 1, 0, 1],
        );
        let tree = induce(&data, &SprintConfig::default());
        assert_eq!(tree.nodes.len(), 1);
    }

    #[test]
    fn max_depth_limits_tree() {
        let cfg = SprintConfig {
            stop: StopRules {
                max_depth: 1,
                ..StopRules::default()
            },
            ..SprintConfig::default()
        };
        // xor-ish data needing two levels; depth 1 allows only the root split.
        let schema = Schema::new(vec![AttrDef::continuous("x"), AttrDef::continuous("y")], 2);
        let data = Dataset::new(
            schema,
            vec![
                Column::Continuous(vec![0.0, 0.0, 1.0, 1.0]),
                Column::Continuous(vec![0.0, 1.0, 0.0, 1.0]),
            ],
            vec![0, 1, 1, 0],
        );
        let tree = induce(&data, &cfg);
        tree.validate();
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn two_level_tree_solves_xor() {
        let schema = Schema::new(vec![AttrDef::continuous("x"), AttrDef::continuous("y")], 2);
        let data = Dataset::new(
            schema,
            vec![
                Column::Continuous(vec![0.0, 0.0, 1.0, 1.0, 0.1, 0.1, 0.9, 0.9]),
                Column::Continuous(vec![0.0, 1.0, 0.0, 1.0, 0.1, 0.9, 0.1, 0.9]),
            ],
            vec![0, 1, 1, 0, 0, 1, 1, 0],
        );
        let tree = induce(&data, &SprintConfig::default());
        tree.validate();
        assert_eq!(tree.accuracy(&data), 1.0);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn mixed_attribute_types() {
        let schema = Schema::new(
            vec![AttrDef::continuous("x"), AttrDef::categorical("g", 2)],
            2,
        );
        // Class = categorical value; continuous attribute is noise that
        // cannot separate perfectly.
        let data = Dataset::new(
            schema,
            vec![
                Column::Continuous(vec![1.0, 2.0, 3.0, 1.5, 2.5, 3.5]),
                Column::Categorical(vec![0, 1, 0, 1, 0, 1]),
            ],
            vec![0, 1, 0, 1, 0, 1],
        );
        let tree = induce(&data, &SprintConfig::default());
        tree.validate();
        assert_eq!(tree.root().test, Some(SplitTest::Categorical { attr: 1 }));
        assert_eq!(tree.accuracy(&data), 1.0);
    }

    #[test]
    fn empty_categorical_child_predicts_parent_majority() {
        let schema = Schema::new(vec![AttrDef::categorical("g", 3)], 2);
        // Value 2 never occurs.
        let data = Dataset::new(
            schema.clone(),
            vec![Column::Categorical(vec![0, 0, 1, 1, 1])],
            vec![0, 0, 1, 1, 1],
        );
        let tree = induce(&data, &SprintConfig::default());
        tree.validate();
        let empty_child = tree.root().children[2];
        let node = &tree.nodes[empty_child as usize];
        assert_eq!(node.n(), 0);
        assert_eq!(node.majority, 1); // parent majority is class 1
    }

    #[test]
    fn stats_track_hash_probes() {
        let (_, stats) = induce_with_stats(&separable(), &SprintConfig::default());
        // Only one attribute, which is the splitting one → no non-splitting
        // probes counted.
        assert_eq!(stats.hash_probes, 0);

        let schema = Schema::new(vec![AttrDef::continuous("x"), AttrDef::continuous("y")], 2);
        let data = Dataset::new(
            schema,
            vec![
                Column::Continuous(vec![1.0, 2.0, 3.0, 4.0]),
                Column::Continuous(vec![4.0, 3.0, 2.0, 1.0]),
            ],
            vec![0, 0, 1, 1],
        );
        let (_, stats) = induce_with_stats(&data, &SprintConfig::default());
        assert_eq!(stats.hash_probes, 4); // the non-splitting list's entries
    }
}
