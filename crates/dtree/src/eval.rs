//! Model evaluation: confusion matrices, error rates, and deterministic
//! train/test splitting.

use crate::data::{Column, Dataset};
use crate::flat::FlatTree;
use crate::gini::CountMatrix;
use crate::tree::DecisionTree;

/// Confusion matrix: row = true class, column = predicted class. Scores
/// through the batched flat-tree kernel; see [`confusion_matrix_flat`] for
/// callers that already hold a compiled tree.
pub fn confusion_matrix(tree: &DecisionTree, data: &Dataset) -> CountMatrix {
    confusion_matrix_flat(&FlatTree::compile(tree), data)
}

/// [`confusion_matrix`] over an already-compiled tree (the serving and
/// distributed-scoring paths compile once and score many batches).
pub fn confusion_matrix_flat(flat: &FlatTree, data: &Dataset) -> CountMatrix {
    let c = data.schema.num_classes as usize;
    let mut m = CountMatrix::new(c, c);
    let mut out = vec![0u8; data.len()];
    flat.predict_batch(data, &mut out);
    for (truth, pred) in data.labels.iter().zip(&out) {
        m.add(*truth as usize, *pred as usize);
    }
    m
}

/// Misclassification rate on `data` (batched, like
/// [`DecisionTree::accuracy`]).
pub fn error_rate(tree: &DecisionTree, data: &Dataset) -> f64 {
    1.0 - tree.accuracy(data)
}

/// SplitMix64 — tiny deterministic generator for shuffling without pulling
/// `rand` into the library's public dependency set.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Deterministically shuffle record indices and split off the first
/// `test_fraction` as a test set. Returns `(train, test)`.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!((0.0..1.0).contains(&test_fraction), "fraction in [0,1)");
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = SplitMix64(seed);
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    let n_test = (n as f64 * test_fraction).round() as usize;
    let (test_idx, train_idx) = idx.split_at(n_test);
    (select(data, train_idx), select(data, test_idx))
}

/// Materialize the subset of `data` given by `indices` (record ids are
/// renumbered).
pub fn select(data: &Dataset, indices: &[usize]) -> Dataset {
    let columns = data
        .columns
        .iter()
        .map(|c| match c {
            Column::Continuous(v) => Column::Continuous(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical(v) => Column::Categorical(indices.iter().map(|&i| v[i]).collect()),
        })
        .collect();
    let labels = indices.iter().map(|&i| data.labels[i]).collect();
    Dataset {
        schema: data.schema.clone(),
        columns,
        labels,
    }
}

/// K-fold cross-validation of serial SPRINT: returns per-fold holdout
/// accuracies. Deterministic given `seed`.
pub fn cross_validate(
    data: &Dataset,
    folds: usize,
    seed: u64,
    cfg: &crate::sprint::SprintConfig,
) -> Vec<f64> {
    assert!(folds >= 2, "need at least two folds");
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = SplitMix64(seed);
    for i in (1..n).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    (0..folds)
        .map(|f| {
            let lo = n * f / folds;
            let hi = n * (f + 1) / folds;
            let test_idx = &idx[lo..hi];
            let train_idx: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
            let train = select(data, &train_idx);
            let test = select(data, test_idx);
            let tree = crate::sprint::induce(&train, cfg);
            tree.accuracy(&test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{AttrDef, Schema};
    use crate::sprint::{self, SprintConfig};

    fn data() -> Dataset {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let xs: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let labels: Vec<u8> = (0..100).map(|i| u8::from(i >= 50)).collect();
        Dataset::new(schema, vec![Column::Continuous(xs)], labels)
    }

    #[test]
    fn confusion_of_perfect_tree_is_diagonal() {
        let d = data();
        let tree = sprint::induce(&d, &SprintConfig::default());
        let m = confusion_matrix(&tree, &d);
        assert_eq!(m.get(0, 0), 50);
        assert_eq!(m.get(1, 1), 50);
        assert_eq!(m.get(0, 1), 0);
        assert_eq!(m.get(1, 0), 0);
        assert_eq!(error_rate(&tree, &d), 0.0);
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let d = data();
        let (tr1, te1) = train_test_split(&d, 0.3, 42);
        let (tr2, te2) = train_test_split(&d, 0.3, 42);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len(), 70);
        assert_eq!(te1.len(), 30);
        // Multiset of values preserved.
        let mut all: Vec<f32> = tr1.columns[0]
            .as_continuous()
            .iter()
            .chain(te1.columns[0].as_continuous())
            .copied()
            .collect();
        all.sort_by(f32::total_cmp);
        assert_eq!(all, (0..100).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_differ() {
        let d = data();
        let (tr1, _) = train_test_split(&d, 0.3, 1);
        let (tr2, _) = train_test_split(&d, 0.3, 2);
        assert_ne!(tr1, tr2);
    }

    #[test]
    fn select_renumbers() {
        let d = data();
        let s = select(&d, &[10, 20, 30]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.columns[0].as_continuous(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn cross_validation_runs_and_is_deterministic() {
        let d = data();
        let cfg = crate::sprint::SprintConfig::default();
        let a = cross_validate(&d, 5, 3, &cfg);
        let b = cross_validate(&d, 5, 3, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|&acc| acc > 0.85), "{a:?}");
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn cross_validation_rejects_one_fold() {
        let d = data();
        cross_validate(&d, 1, 0, &crate::sprint::SprintConfig::default());
    }

    #[test]
    fn generalization_on_holdout() {
        let d = data();
        let (train, test) = train_test_split(&d, 0.25, 7);
        let tree = sprint::induce(&train, &SprintConfig::default());
        assert!(tree.accuracy(&test) > 0.9);
    }
}
