//! `dtree` — sequential decision-tree classification substrate.
//!
//! This crate implements everything ScalParC assumes of the *serial* world
//! (paper §2):
//!
//! * the tabular data model with continuous and categorical attributes
//!   ([`data`]);
//! * the gini splitting criterion, count matrices, and the linear
//!   split-point scan over value-sorted lists ([`gini`]);
//! * SPRINT-style attribute lists, presorted once and split consistently via
//!   a record-id → child hash table ([`list`], [`sprint`]);
//! * the decision-tree model with prediction and validation ([`tree`],
//!   [`eval`]);
//! * the compiled flat-tree form with the batched scoring kernel every
//!   evaluation path routes through ([`flat`]);
//! * the CART/C4.5-style baseline that re-sorts at every node, used by the
//!   presort ablation ([`cart`]);
//! * reduced-error pruning as the documented extension covering the paper's
//!   second (out-of-scope) phase ([`prune`]).
//!
//! Every classifier here and in the `scalparc` crate shares the same
//! candidate comparison ([`tree::BestSplit::cmp`]) and stopping rules
//! ([`tree::StopRules`]), so all of them induce **identical trees** on
//! identical data — a property the workspace's integration tests enforce.

pub mod cart;
pub mod data;
pub mod eval;
pub mod flat;
pub mod flat_forest;
pub mod gini;
pub mod hashutil;
pub mod list;
pub mod model_io;
pub mod prune;
pub mod split;
pub mod sprint;
pub mod testgen;
pub mod tree;

pub use data::{AttrDef, AttrKind, Column, Dataset, Schema};
pub use flat::FlatTree;
pub use flat_forest::{FlatForest, VoteReduce};
pub use gini::Criterion;
pub use split::{CatSplitMode, SplitOptions};
pub use tree::{BestSplit, DecisionTree, Node, SplitTest, StopRules};
