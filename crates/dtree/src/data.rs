//! Tabular training data: schema and column-oriented dataset.
//!
//! Classification in the paper operates on records with *continuous* and
//! *categorical* attributes plus a class label (§1). The dataset is stored
//! column-major because both the serial and parallel classifiers immediately
//! fragment it vertically into per-attribute lists.

/// Kind of an attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttrKind {
    /// Real-valued attribute; split conditions have the form `A < v`.
    Continuous,
    /// Finite-domain attribute with values `0..cardinality`; a split forms
    /// one partition per value (paper §2).
    Categorical {
        /// Number of distinct values in the domain.
        cardinality: u32,
    },
}

/// Declaration of one attribute.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrDef {
    /// Human-readable name (e.g. `"salary"`).
    pub name: String,
    /// Continuous or categorical.
    pub kind: AttrKind,
}

impl AttrDef {
    /// A continuous attribute.
    pub fn continuous(name: &str) -> Self {
        AttrDef {
            name: name.to_string(),
            kind: AttrKind::Continuous,
        }
    }

    /// A categorical attribute with the given domain size.
    pub fn categorical(name: &str, cardinality: u32) -> Self {
        AttrDef {
            name: name.to_string(),
            kind: AttrKind::Categorical { cardinality },
        }
    }
}

/// Schema of a training set: attribute declarations and the class count.
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    /// Attribute declarations, in column order.
    pub attrs: Vec<AttrDef>,
    /// Number of class labels (`n_c` in the paper).
    pub num_classes: u32,
}

impl Schema {
    /// Create a schema; panics on an empty attribute list or fewer than two
    /// classes.
    pub fn new(attrs: Vec<AttrDef>, num_classes: u32) -> Self {
        assert!(!attrs.is_empty(), "schema needs at least one attribute");
        assert!(
            num_classes >= 2,
            "classification needs at least two classes"
        );
        Schema { attrs, num_classes }
    }

    /// Number of attributes (`n_a`).
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Indices of continuous attributes.
    pub fn continuous_attrs(&self) -> Vec<usize> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AttrKind::Continuous)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of categorical attributes.
    pub fn categorical_attrs(&self) -> Vec<usize> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a.kind, AttrKind::Categorical { .. }))
            .map(|(i, _)| i)
            .collect()
    }
}

/// One column of data.
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    /// Values of a continuous attribute.
    Continuous(Vec<f32>),
    /// Values of a categorical attribute, each `< cardinality`.
    Categorical(Vec<u32>),
}

impl Column {
    /// Number of records in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Continuous(v) => v.len(),
            Column::Categorical(v) => v.len(),
        }
    }

    /// True when the column holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The continuous values; panics on a categorical column.
    pub fn as_continuous(&self) -> &[f32] {
        match self {
            Column::Continuous(v) => v,
            Column::Categorical(_) => panic!("column is categorical, not continuous"),
        }
    }

    /// The categorical values; panics on a continuous column.
    pub fn as_categorical(&self) -> &[u32] {
        match self {
            Column::Categorical(v) => v,
            Column::Continuous(_) => panic!("column is continuous, not categorical"),
        }
    }
}

/// A column-oriented training set. Record `i` is
/// `(columns[0][i], …, columns[a-1][i])` with class `labels[i]`; its record
/// id is `i`.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// The schema the columns conform to.
    pub schema: Schema,
    /// One column per attribute, all of equal length.
    pub columns: Vec<Column>,
    /// Class label per record, each `< schema.num_classes`.
    pub labels: Vec<u8>,
}

impl Dataset {
    /// Create a dataset, validating column shapes and label/value ranges.
    pub fn new(schema: Schema, columns: Vec<Column>, labels: Vec<u8>) -> Self {
        assert_eq!(
            columns.len(),
            schema.num_attrs(),
            "one column per schema attribute required"
        );
        for (i, (col, def)) in columns.iter().zip(&schema.attrs).enumerate() {
            assert_eq!(col.len(), labels.len(), "column {i} length mismatch");
            match (col, def.kind) {
                (Column::Continuous(v), AttrKind::Continuous) => {
                    assert!(
                        v.iter().all(|x| x.is_finite()),
                        "attribute {i} has non-finite values"
                    );
                }
                (Column::Categorical(v), AttrKind::Categorical { cardinality }) => {
                    assert!(
                        v.iter().all(|&x| x < cardinality),
                        "attribute {i} has out-of-domain values"
                    );
                }
                _ => panic!("column {i} kind does not match schema"),
            }
        }
        assert!(
            labels.iter().all(|&c| (c as u32) < schema.num_classes),
            "label out of range"
        );
        Dataset {
            schema,
            columns,
            labels,
        }
    }

    /// Number of records (`N`).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Continuous value of attribute `attr` for record `rid`.
    /// Panics if the attribute is categorical.
    pub fn continuous_value(&self, attr: usize, rid: usize) -> f32 {
        self.columns[attr].as_continuous()[rid]
    }

    /// Categorical value of attribute `attr` for record `rid`.
    /// Panics if the attribute is continuous.
    pub fn categorical_value(&self, attr: usize, rid: usize) -> u32 {
        self.columns[attr].as_categorical()[rid]
    }

    /// Class histogram of the whole dataset.
    pub fn class_hist(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.schema.num_classes as usize];
        for &c in &self.labels {
            h[c as usize] += 1;
        }
        h
    }

    /// Horizontal fragment `[lo, hi)` of the dataset (record ids are
    /// renumbered from zero in the fragment; callers needing global ids must
    /// track the offset). Used to distribute data across processors.
    pub fn slice(&self, lo: usize, hi: usize) -> Dataset {
        assert!(lo <= hi && hi <= self.len());
        let columns = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Continuous(v) => Column::Continuous(v[lo..hi].to_vec()),
                Column::Categorical(v) => Column::Categorical(v[lo..hi].to_vec()),
            })
            .collect();
        Dataset {
            schema: self.schema.clone(),
            columns,
            labels: self.labels[lo..hi].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let schema = Schema::new(
            vec![AttrDef::continuous("x"), AttrDef::categorical("g", 3)],
            2,
        );
        Dataset::new(
            schema,
            vec![
                Column::Continuous(vec![1.0, 2.0, 3.0, 4.0]),
                Column::Categorical(vec![0, 1, 2, 1]),
            ],
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn construction_and_access() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.continuous_value(0, 2), 3.0);
        assert_eq!(d.categorical_value(1, 3), 1);
        assert_eq!(d.class_hist(), vec![2, 2]);
        assert_eq!(d.schema.continuous_attrs(), vec![0]);
        assert_eq!(d.schema.categorical_attrs(), vec![1]);
    }

    #[test]
    fn slicing() {
        let d = toy();
        let s = d.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.continuous_value(0, 0), 2.0);
        assert_eq!(s.labels, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_column_length_panics() {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        Dataset::new(schema, vec![Column::Continuous(vec![1.0])], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out-of-domain")]
    fn out_of_domain_categorical_panics() {
        let schema = Schema::new(vec![AttrDef::categorical("g", 2)], 2);
        Dataset::new(schema, vec![Column::Categorical(vec![5])], vec![0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        Dataset::new(schema, vec![Column::Continuous(vec![1.0])], vec![9]);
    }

    #[test]
    #[should_panic(expected = "kind does not match")]
    fn kind_mismatch_panics() {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        Dataset::new(schema, vec![Column::Categorical(vec![0])], vec![0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_values_panic() {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        Dataset::new(schema, vec![Column::Continuous(vec![f32::NAN])], vec![0]);
    }
}
