//! Tree pruning (the paper's second step, §2: "the induced tree is made more
//! concise and robust by removing any statistical dependencies on the
//! specific training dataset"). The paper concentrates on induction and
//! leaves pruning out of scope; we provide reduced-error pruning as the
//! documented extension so the library covers the full classification
//! pipeline.

use crate::data::Dataset;
use crate::tree::{DecisionTree, Node};

/// Reduced-error pruning against a validation set: bottom-up, replace a
/// subtree by a leaf whenever doing so does not increase validation errors.
/// Returns a new tree (the input is untouched).
pub fn reduced_error_prune(tree: &DecisionTree, validation: &Dataset) -> DecisionTree {
    // Validation class histogram per node.
    let classes = tree.schema.num_classes as usize;
    let mut vhist = vec![vec![0u64; classes]; tree.nodes.len()];
    for rid in 0..validation.len() {
        let class = validation.labels[rid] as usize;
        let mut id = 0usize;
        loop {
            vhist[id][class] += 1;
            let node = &tree.nodes[id];
            match node.test {
                None => break,
                Some(test) => id = node.children[test.route(validation, rid)] as usize,
            }
        }
    }

    // Bottom-up subtree error vs. leaf error. `keep[id]` = subtree survives.
    let n = tree.nodes.len();
    let mut subtree_err = vec![0u64; n];
    let mut keep = vec![true; n];
    // Children always have larger ids than parents (BFS construction), so a
    // reverse scan is bottom-up.
    for id in (0..n).rev() {
        let node = &tree.nodes[id];
        let as_leaf_err: u64 = vhist[id].iter().sum::<u64>()
            - vhist[id].get(node.majority as usize).copied().unwrap_or(0);
        if node.is_leaf() {
            subtree_err[id] = as_leaf_err;
            continue;
        }
        let child_err: u64 = node.children.iter().map(|&c| subtree_err[c as usize]).sum();
        if as_leaf_err <= child_err {
            keep[id] = false;
            subtree_err[id] = as_leaf_err;
        } else {
            subtree_err[id] = child_err;
        }
    }

    // Rebuild the arena keeping only surviving structure.
    let mut nodes: Vec<Node> = Vec::new();
    let mut map = vec![u32::MAX; n];
    rebuild(tree, 0, &keep, &mut nodes, &mut map);
    DecisionTree {
        schema: tree.schema.clone(),
        nodes,
    }
}

fn rebuild(
    tree: &DecisionTree,
    id: usize,
    keep: &[bool],
    nodes: &mut Vec<Node>,
    map: &mut [u32],
) -> u32 {
    let new_id = nodes.len() as u32;
    map[id] = new_id;
    let src = &tree.nodes[id];
    if keep[id] && !src.is_leaf() {
        nodes.push(src.clone());
        // Children are appended after the parent during the recursion.
        let children: Vec<u32> = src.children.to_vec();
        // Placeholder children fixed up below.
        nodes[new_id as usize].children.clear();
        let mut new_children = Vec::with_capacity(children.len());
        for c in children {
            new_children.push(rebuild(tree, c as usize, keep, nodes, map));
        }
        nodes[new_id as usize].children = new_children;
    } else {
        let mut leaf = Node::leaf(src.depth, src.hist.clone());
        leaf.majority = src.majority;
        nodes.push(leaf);
    }
    new_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{AttrDef, Column, Schema};
    use crate::sprint::{self, SprintConfig};

    fn noisy_dataset(seed: u64, n: usize) -> Dataset {
        // True rule: class = x < 50. 10% label noise.
        let schema = Schema::new(
            vec![AttrDef::continuous("x"), AttrDef::continuous("noise")],
            2,
        );
        let mut state = seed;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut xs = Vec::new();
        let mut zs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x = (rand() % 1000) as f32 / 10.0;
            let z = (rand() % 1000) as f32 / 10.0;
            let mut label = u8::from(x >= 50.0);
            if rand() % 10 == 0 {
                label ^= 1;
            }
            xs.push(x);
            zs.push(z);
            labels.push(label);
        }
        Dataset::new(
            schema,
            vec![Column::Continuous(xs), Column::Continuous(zs)],
            labels,
        )
    }

    #[test]
    fn pruning_shrinks_noisy_tree_without_losing_holdout_accuracy() {
        let train = noisy_dataset(1, 600);
        let valid = noisy_dataset(2, 300);
        let test = noisy_dataset(3, 300);
        let tree = sprint::induce(&train, &SprintConfig::default());
        let pruned = reduced_error_prune(&tree, &valid);
        pruned.validate();
        assert!(
            pruned.nodes.len() < tree.nodes.len(),
            "pruning should shrink an overfit tree ({} vs {})",
            pruned.nodes.len(),
            tree.nodes.len()
        );
        let acc_full = tree.accuracy(&test);
        let acc_pruned = pruned.accuracy(&test);
        assert!(
            acc_pruned + 0.02 >= acc_full,
            "pruned {acc_pruned} much worse than full {acc_full}"
        );
        // Both should be close to the 90% noise ceiling.
        assert!(acc_pruned > 0.8);
    }

    #[test]
    fn pruning_perfect_tree_keeps_perfect_accuracy() {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let data = Dataset::new(
            schema,
            vec![Column::Continuous((0..40).map(|i| i as f32).collect())],
            (0..40).map(|i| u8::from(i >= 20)).collect(),
        );
        let tree = sprint::induce(&data, &SprintConfig::default());
        let pruned = reduced_error_prune(&tree, &data);
        pruned.validate();
        assert_eq!(pruned.accuracy(&data), 1.0);
    }

    #[test]
    fn pruning_with_empty_validation_collapses_to_root_leaf() {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let data = Dataset::new(
            schema.clone(),
            vec![Column::Continuous(vec![1.0, 2.0, 3.0, 4.0])],
            vec![0, 0, 1, 1],
        );
        let tree = sprint::induce(&data, &SprintConfig::default());
        let empty = Dataset::new(schema, vec![Column::Continuous(vec![])], vec![]);
        let pruned = reduced_error_prune(&tree, &empty);
        // Zero validation errors either way → leaf preferred everywhere.
        assert_eq!(pruned.nodes.len(), 1);
    }
}
