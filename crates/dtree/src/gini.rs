//! Gini impurity, count matrices, and split-point search.
//!
//! The splitting criterion (paper §2): a parent with `n` records from `c`
//! classes is split into `d` partitions; partition `i` has `n_i` records of
//! which `n_ij` bear class `j`. Then
//!
//! ```text
//! gini_i     = 1 − Σ_j (n_ij / n_i)²
//! gini_split = Σ_i (n_i / n) · gini_i
//! ```
//!
//! For a continuous attribute sorted on values, the optimal `A < v` split is
//! found by one linear scan that slides the split point across the list,
//! updating the *below* count matrix incrementally ([`ContinuousScan`]). For
//! a categorical attribute there is a single count matrix with one row per
//! domain value ([`CountMatrix`], [`categorical_split_gini`]).

/// Splitting criterion: which impurity function scores candidate splits.
///
/// The paper (and CART/SLIQ/SPRINT) minimizes the **gini index**; ID3/C4.5
/// minimize **entropy** (maximize information gain). Both are concave, so
/// every scan and search in this crate works unchanged under either; the
/// criterion is threaded through the classifiers' configs as an extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Criterion {
    /// `1 − Σ (n_j/n)²` — the paper's criterion.
    #[default]
    Gini,
    /// `−Σ (n_j/n)·log2(n_j/n)` — C4.5-style information gain.
    Entropy,
}

impl Criterion {
    /// Impurity of one partition.
    #[inline]
    pub fn impurity(&self, hist: &[u64]) -> f64 {
        match self {
            Criterion::Gini => gini_of(hist),
            Criterion::Entropy => entropy_of(hist),
        }
    }

    /// Weighted impurity of a binary partition (`below` vs `total − below`).
    #[inline]
    pub fn binary_split(&self, below: &[u64], total: &[u64]) -> f64 {
        match self {
            Criterion::Gini => binary_split_gini(below, total),
            Criterion::Entropy => binary_split_entropy(below, total),
        }
    }

    /// Weighted impurity of the m-way categorical partition, or `None` when
    /// fewer than two partitions are populated.
    pub fn multiway_split(&self, matrix: &CountMatrix) -> Option<f64> {
        if matrix.nonempty_partitions() < 2 {
            return None;
        }
        let n = matrix.total() as f64;
        let mut g = 0.0;
        for i in 0..matrix.partitions() {
            let row = matrix.row(i);
            let ni: u64 = row.iter().sum();
            if ni > 0 {
                g += (ni as f64 / n) * self.impurity(row);
            }
        }
        Some(g)
    }
}

/// Entropy (bits) of one partition given its class histogram.
/// Returns 0 for an empty partition.
pub fn entropy_of(hist: &[u64]) -> f64 {
    let n: u64 = hist.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    -hist
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let f = c as f64 / n;
            f * f.log2()
        })
        .sum::<f64>()
}

/// `binary_split` under entropy. Like [`binary_split_gini`], the *above*
/// histogram is derived element-wise on the fly instead of materialized —
/// this runs once per candidate boundary, the innermost loop of FindSplitII.
pub fn binary_split_entropy(below: &[u64], total: &[u64]) -> f64 {
    debug_assert_eq!(below.len(), total.len());
    let n: u64 = total.iter().sum();
    let nb: u64 = below.iter().sum();
    debug_assert!(nb <= n);
    if n == 0 {
        return 0.0;
    }
    let na = n - nb;
    let e_below = entropy_of(below);
    let e_above = if na == 0 {
        0.0
    } else {
        let naf = na as f64;
        -total
            .iter()
            .zip(below)
            .map(|(&t, &b)| t - b)
            .filter(|&c| c > 0)
            .map(|c| {
                let f = c as f64 / naf;
                f * f.log2()
            })
            .sum::<f64>()
    };
    let n = n as f64;
    (nb as f64 / n) * e_below + (na as f64 / n) * e_above
}

/// Gini impurity of one partition given its class histogram.
/// Returns 0 for an empty partition (it contributes nothing to a split).
pub fn gini_of(hist: &[u64]) -> f64 {
    let n: u64 = hist.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - hist
        .iter()
        .map(|&c| {
            let f = c as f64 / n;
            f * f
        })
        .sum::<f64>()
}

/// `gini_split` of a binary partition described by the *below* histogram and
/// the parent's *total* histogram.
///
/// The *above* histogram is derived element-wise (`total − below`) without
/// being materialized: this function runs once per candidate boundary and
/// must not allocate. The fold order matches `gini_of` on a materialized
/// histogram, so scores are bit-identical to the textbook formulation.
pub fn binary_split_gini(below: &[u64], total: &[u64]) -> f64 {
    debug_assert_eq!(below.len(), total.len());
    let n: u64 = total.iter().sum();
    let nb: u64 = below.iter().sum();
    debug_assert!(nb <= n);
    if n == 0 {
        return 0.0;
    }
    let na = n - nb;
    let g_below = gini_of(below);
    let g_above = if na == 0 {
        0.0
    } else {
        let naf = na as f64;
        1.0 - total
            .iter()
            .zip(below)
            .map(|(&t, &b)| {
                let f = (t - b) as f64 / naf;
                f * f
            })
            .sum::<f64>()
    };
    let n = n as f64;
    (nb as f64 / n) * g_below + (na as f64 / n) * g_above
}

/// A `partitions × classes` count matrix (`[n_ij]` in the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountMatrix {
    partitions: usize,
    classes: usize,
    data: Vec<u64>,
}

impl CountMatrix {
    /// Zero matrix with the given shape.
    pub fn new(partitions: usize, classes: usize) -> Self {
        CountMatrix {
            partitions,
            classes,
            data: vec![0; partitions * classes],
        }
    }

    /// Number of partitions (rows).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of classes (columns).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count one record of `class` in `partition`.
    #[inline]
    pub fn add(&mut self, partition: usize, class: usize) {
        self.data[partition * self.classes + class] += 1;
    }

    /// The class histogram of one partition.
    pub fn row(&self, partition: usize) -> &[u64] {
        &self.data[partition * self.classes..(partition + 1) * self.classes]
    }

    /// Element `n_ij`.
    pub fn get(&self, partition: usize, class: usize) -> u64 {
        self.data[partition * self.classes + class]
    }

    /// Element-wise accumulate another matrix (used by parallel reductions).
    pub fn merge(&mut self, other: &CountMatrix) {
        assert_eq!(self.data.len(), other.data.len(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Total records counted.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }

    /// Class histogram summed over all partitions.
    pub fn class_totals(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.classes];
        for part in 0..self.partitions {
            for (j, c) in self.row(part).iter().enumerate() {
                h[j] += c;
            }
        }
        h
    }

    /// Number of partitions with at least one record.
    pub fn nonempty_partitions(&self) -> usize {
        (0..self.partitions)
            .filter(|&i| self.row(i).iter().any(|&c| c > 0))
            .count()
    }

    /// Flat storage, row-major (for communication).
    pub fn as_slice(&self) -> &[u64] {
        &self.data
    }

    /// Rebuild from flat row-major storage.
    pub fn from_slice(partitions: usize, classes: usize, data: &[u64]) -> Self {
        assert_eq!(data.len(), partitions * classes);
        CountMatrix {
            partitions,
            classes,
            data: data.to_vec(),
        }
    }

    /// Reshape this matrix in place from flat row-major storage, reusing
    /// its buffer — the allocation-free counterpart of
    /// [`CountMatrix::from_slice`] for reused scratch matrices.
    pub fn assign_from_slice(&mut self, partitions: usize, classes: usize, data: &[u64]) {
        assert_eq!(data.len(), partitions * classes);
        self.partitions = partitions;
        self.classes = classes;
        self.data.clear();
        self.data.extend_from_slice(data);
    }
}

/// `gini_split` of the m-way categorical partition described by `matrix`.
/// Returns `None` when fewer than two partitions are non-empty (the split
/// would not separate anything).
pub fn categorical_split_gini(matrix: &CountMatrix) -> Option<f64> {
    if matrix.nonempty_partitions() < 2 {
        return None;
    }
    let n = matrix.total() as f64;
    let mut g = 0.0;
    for i in 0..matrix.partitions() {
        let row = matrix.row(i);
        let ni: u64 = row.iter().sum();
        if ni > 0 {
            g += (ni as f64 / n) * gini_of(row);
        }
    }
    Some(g)
}

/// A candidate continuous split.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContSplit {
    /// Weighted-impurity score of the candidate under the scan's criterion
    /// (gini unless [`ContinuousScan::with_criterion`] changed it).
    pub gini: f64,
    /// Threshold `v` of the condition `A < v`.
    pub threshold: f32,
}

/// Incremental split-point scan over a value-sorted run of (value, class)
/// pairs.
///
/// Candidates are evaluated at boundaries between *distinct* values; the
/// threshold is the midpoint of the adjacent values (nudged up so the
/// predicate `x < threshold` is consistent with the scan counts even when
/// the midpoint rounds down to the lower value).
///
/// The scan may start mid-list — exactly what the parallel formulation needs:
/// pass the class counts *below* the first local entry and the value of the
/// last entry before it (both obtained with a parallel prefix operation).
#[derive(Clone, Debug)]
pub struct ContinuousScan {
    criterion: Criterion,
    total: Vec<u64>,
    n_total: u64,
    below: Vec<u64>,
    n_below: u64,
    prev: Option<f32>,
    best: Option<ContSplit>,
}

impl ContinuousScan {
    /// Start a scan of a run whose parent histogram is `total`, with
    /// `below_init` records already below the first entry and `prev_value`
    /// the last attribute value before the run (`None` at the very start).
    pub fn new(total: Vec<u64>, below_init: Vec<u64>, prev_value: Option<f32>) -> Self {
        assert_eq!(total.len(), below_init.len());
        let n_total = total.iter().sum();
        let n_below = below_init.iter().sum();
        assert!(n_below <= n_total, "below counts exceed total");
        ContinuousScan {
            criterion: Criterion::Gini,
            total,
            n_total,
            below: below_init,
            n_below,
            prev: prev_value,
            best: None,
        }
    }

    /// Switch the scan to another splitting criterion (builder style).
    pub fn with_criterion(mut self, criterion: Criterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Switch the criterion in place (for reused scan state).
    pub fn set_criterion(&mut self, criterion: Criterion) {
        self.criterion = criterion;
    }

    /// Re-arm the scan for a new run, reusing its internal buffers — the
    /// allocation-free counterpart of [`ContinuousScan::new`] for callers
    /// that scan many runs per level.
    pub fn reset(&mut self, total: &[u64], below_init: &[u64], prev_value: Option<f32>) {
        assert_eq!(total.len(), below_init.len());
        self.total.clear();
        self.total.extend_from_slice(total);
        self.below.clear();
        self.below.extend_from_slice(below_init);
        self.n_total = self.total.iter().sum();
        self.n_below = self.below.iter().sum();
        assert!(self.n_below <= self.n_total, "below counts exceed total");
        self.prev = prev_value;
        self.best = None;
    }

    /// Scan at the start of a whole (single-processor) list.
    pub fn fresh(total: Vec<u64>) -> Self {
        let classes = total.len();
        ContinuousScan::new(total, vec![0; classes], None)
    }

    #[inline]
    fn consider_boundary(&mut self, threshold: f32) {
        if self.n_below == 0 || self.n_below == self.n_total {
            return;
        }
        let g = self.criterion.binary_split(&self.below, &self.total);
        // Strict improvement keeps the lowest-threshold candidate on ties,
        // which makes serial and parallel searches agree deterministically.
        if self.best.is_none_or(|b| g < b.gini) {
            self.best = Some(ContSplit { gini: g, threshold });
        }
    }

    /// Feed the next (value, class) pair; values must be non-decreasing.
    #[inline]
    pub fn push(&mut self, value: f32, class: u8) {
        if let Some(pv) = self.prev {
            debug_assert!(value >= pv, "scan input not sorted");
            if value != pv {
                // Threshold strictly above pv so pv-records stay below.
                let mid = (pv + value) * 0.5;
                let thr = if mid > pv { mid } else { value };
                self.consider_boundary(thr);
            }
        }
        self.below[class as usize] += 1;
        self.n_below += 1;
        self.prev = Some(value);
    }

    /// Branch-light scan of a value-sorted packed segment.
    ///
    /// Semantically identical to pushing every entry of `seg` in order, but
    /// restructured run-by-run: boundary logic runs once per *distinct*
    /// value, and the per-record inner loop over each equal-value run is a
    /// pure class-count accumulation with no comparisons against the
    /// previous value — the shape the autovectorizer can take. NaN values
    /// (never equal to themselves) degenerate to runs of one, matching
    /// [`ContinuousScan::push`] exactly, so the two kernels produce
    /// bit-identical candidates on any input.
    pub fn scan_packed(&mut self, seg: &[crate::list::ContEntry]) {
        let mut i = 0usize;
        while i < seg.len() {
            let v = seg[i].value;
            if let Some(pv) = self.prev {
                debug_assert!(v >= pv, "scan input not sorted");
                if v != pv {
                    // Threshold strictly above pv so pv-records stay below.
                    let mid = (pv + v) * 0.5;
                    let thr = if mid > pv { mid } else { v };
                    self.consider_boundary(thr);
                }
            }
            // Extend the run of entries sharing this value.
            let mut j = i + 1;
            while j < seg.len() && seg[j].value == v {
                j += 1;
            }
            // Count classes over the run — no per-record boundary checks.
            for e in &seg[i..j] {
                self.below[e.class as usize] += 1;
            }
            self.n_below += (j - i) as u64;
            self.prev = Some(v);
            i = j;
        }
    }

    /// Best candidate seen, if any boundary was evaluable.
    pub fn best(&self) -> Option<ContSplit> {
        self.best
    }

    /// Class counts accumulated below the current position.
    pub fn below(&self) -> &[u64] {
        &self.below
    }

    /// The last value pushed (or the initial `prev_value`).
    pub fn prev_value(&self) -> Option<f32> {
        self.prev
    }
}

/// Reference implementation: brute-force best `A < v` split of a sorted
/// (value, class) slice. Quadratic; used by tests to validate the scan.
pub fn brute_force_best_split(sorted: &[(f32, u8)], classes: usize) -> Option<ContSplit> {
    let mut total = vec![0u64; classes];
    for &(_, c) in sorted {
        total[c as usize] += 1;
    }
    let mut best: Option<ContSplit> = None;
    for i in 1..sorted.len() {
        let (pv, v) = (sorted[i - 1].0, sorted[i].0);
        if pv == v {
            continue;
        }
        let mid = (pv + v) * 0.5;
        let thr = if mid > pv { mid } else { v };
        let mut below = vec![0u64; classes];
        for &(x, c) in sorted {
            if x < thr {
                below[c as usize] += 1;
            }
        }
        let g = binary_split_gini(&below, &total);
        if best.is_none_or(|b| g < b.gini) {
            best = Some(ContSplit {
                gini: g,
                threshold: thr,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini_of(&[10, 0]), 0.0);
        assert_eq!(gini_of(&[0, 0]), 0.0);
        assert!((gini_of(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((gini_of(&[1, 1, 1, 1]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy_of(&[10, 0]), 0.0);
        assert_eq!(entropy_of(&[0, 0]), 0.0);
        assert!((entropy_of(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!((entropy_of(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn criterion_dispatch() {
        assert_eq!(Criterion::Gini.impurity(&[3, 3]), gini_of(&[3, 3]));
        assert_eq!(Criterion::Entropy.impurity(&[3, 3]), entropy_of(&[3, 3]));
        // Perfect separation scores zero under both.
        assert_eq!(Criterion::Gini.binary_split(&[4, 0], &[4, 4]), 0.0);
        assert_eq!(Criterion::Entropy.binary_split(&[4, 0], &[4, 4]), 0.0);
    }

    #[test]
    fn entropy_scan_can_choose_a_different_threshold() {
        // A distribution where gini and entropy disagree on the best cut:
        // gini prefers balanced purity, entropy punishes small impurities
        // differently. Verify both scans run and each optimum is no worse
        // than the other criterion's pick under its own measure.
        let pts: Vec<(f32, u8)> = vec![
            (1.0, 0),
            (2.0, 0),
            (3.0, 0),
            (4.0, 1),
            (5.0, 0),
            (6.0, 1),
            (7.0, 1),
            (8.0, 1),
        ];
        let total = vec![4u64, 4u64];
        let mut g = ContinuousScan::fresh(total.clone());
        let mut e = ContinuousScan::fresh(total).with_criterion(Criterion::Entropy);
        for &(v, c) in &pts {
            g.push(v, c);
            e.push(v, c);
        }
        let (gb, eb) = (g.best().unwrap(), e.best().unwrap());
        // Each best is optimal under its own criterion by construction; the
        // brute force under entropy must agree with the entropy scan.
        let mut best_e = f64::INFINITY;
        for thr in [1.5f32, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5] {
            let mut below = vec![0u64; 2];
            for &(x, c) in &pts {
                if x < thr {
                    below[c as usize] += 1;
                }
            }
            best_e = best_e.min(Criterion::Entropy.binary_split(&below, &[4, 4]));
        }
        assert!((eb.gini - best_e).abs() < 1e-12);
        assert!(gb.gini <= 0.5);
    }

    #[test]
    fn multiway_split_entropy() {
        let mut m = CountMatrix::new(2, 2);
        for _ in 0..3 {
            m.add(0, 0);
        }
        for _ in 0..5 {
            m.add(1, 1);
        }
        assert_eq!(Criterion::Entropy.multiway_split(&m), Some(0.0));
        assert_eq!(
            Criterion::Gini.multiway_split(&m),
            categorical_split_gini(&m)
        );
    }

    #[test]
    fn binary_split_perfect_separation() {
        // below = all class 0, above = all class 1 → gini 0
        let g = binary_split_gini(&[4, 0], &[4, 4]);
        assert_eq!(g, 0.0);
    }

    #[test]
    fn binary_split_no_separation() {
        // Both sides have the parent's 50/50 mix → gini 0.5
        let g = binary_split_gini(&[2, 2], &[4, 4]);
        assert!((g - 0.5).abs() < 1e-12);
    }

    #[test]
    fn count_matrix_ops() {
        let mut m = CountMatrix::new(3, 2);
        m.add(0, 0);
        m.add(0, 0);
        m.add(1, 1);
        m.add(2, 0);
        assert_eq!(m.row(0), &[2, 0]);
        assert_eq!(m.get(1, 1), 1);
        assert_eq!(m.total(), 4);
        assert_eq!(m.class_totals(), vec![3, 1]);
        assert_eq!(m.nonempty_partitions(), 3);

        let mut m2 = CountMatrix::new(3, 2);
        m2.add(1, 0);
        m.merge(&m2);
        assert_eq!(m.get(1, 0), 1);

        let rt = CountMatrix::from_slice(3, 2, m.as_slice());
        assert_eq!(rt, m);
    }

    #[test]
    fn categorical_gini_perfect_and_useless() {
        // Two values, each pure in a different class.
        let mut m = CountMatrix::new(2, 2);
        for _ in 0..3 {
            m.add(0, 0);
        }
        for _ in 0..5 {
            m.add(1, 1);
        }
        assert_eq!(categorical_split_gini(&m), Some(0.0));

        // All records share one value → no split possible.
        let mut m = CountMatrix::new(2, 2);
        m.add(0, 0);
        m.add(0, 1);
        assert_eq!(categorical_split_gini(&m), None);
    }

    #[test]
    fn scan_finds_obvious_split() {
        // values 1,2,3,4 with classes 0,0,1,1 → best threshold 2.5, gini 0.
        let mut s = ContinuousScan::fresh(vec![2, 2]);
        for &(v, c) in &[(1.0f32, 0u8), (2.0, 0), (3.0, 1), (4.0, 1)] {
            s.push(v, c);
        }
        let best = s.best().unwrap();
        assert_eq!(best.gini, 0.0);
        assert_eq!(best.threshold, 2.5);
    }

    #[test]
    fn scan_skips_equal_value_runs() {
        // A boundary inside an equal-value run must not be considered.
        let mut s = ContinuousScan::fresh(vec![2, 2]);
        for &(v, c) in &[(1.0f32, 0u8), (1.0, 1), (2.0, 0), (2.0, 1)] {
            s.push(v, c);
        }
        // Only boundary is between the 1.0s and 2.0s; both sides are mixed.
        let best = s.best().unwrap();
        assert!((best.gini - 0.5).abs() < 1e-12);
        assert_eq!(best.threshold, 1.5);
    }

    #[test]
    fn scan_all_equal_yields_no_candidate() {
        let mut s = ContinuousScan::fresh(vec![1, 2]);
        for &(v, c) in &[(7.0f32, 0u8), (7.0, 1), (7.0, 1)] {
            s.push(v, c);
        }
        assert!(s.best().is_none());
    }

    #[test]
    fn scan_matches_brute_force() {
        // Deterministic pseudo-random input.
        let mut vals: Vec<(f32, u8)> = (0..200u32)
            .map(|i| {
                let x = ((i.wrapping_mul(2654435761)) % 97) as f32 / 7.0;
                let c = ((i.wrapping_mul(40503)) % 3) as u8;
                (x, c)
            })
            .collect();
        vals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut total = vec![0u64; 3];
        for &(_, c) in &vals {
            total[c as usize] += 1;
        }
        let mut s = ContinuousScan::fresh(total);
        for &(v, c) in &vals {
            s.push(v, c);
        }
        let scan = s.best().unwrap();
        let brute = brute_force_best_split(&vals, 3).unwrap();
        assert_eq!(scan.threshold, brute.threshold);
        assert!((scan.gini - brute.gini).abs() < 1e-12);
    }

    #[test]
    fn scan_resumed_mid_list_matches_whole_list() {
        // Split the list at an arbitrary point and resume with prefix state —
        // the mechanism used across processor boundaries in FindSplitI.
        let vals: Vec<(f32, u8)> = vec![(1.0, 0), (2.0, 1), (2.0, 0), (3.0, 1), (5.0, 1), (8.0, 0)];
        let total = vec![3u64, 3u64];
        let mut whole = ContinuousScan::fresh(total.clone());
        for &(v, c) in &vals {
            whole.push(v, c);
        }

        for cut in 0..=vals.len() {
            let mut below = vec![0u64; 2];
            for &(_, c) in &vals[..cut] {
                below[c as usize] += 1;
            }
            let prev = if cut == 0 {
                None
            } else {
                Some(vals[cut - 1].0)
            };
            let mut first = ContinuousScan::fresh(total.clone());
            for &(v, c) in &vals[..cut] {
                first.push(v, c);
            }
            let mut second = ContinuousScan::new(total.clone(), below, prev);
            for &(v, c) in &vals[cut..] {
                second.push(v, c);
            }
            // The union of both halves' candidates must include the whole
            // scan's best.
            let halves_best = [first.best(), second.best()]
                .into_iter()
                .flatten()
                .min_by(|a, b| {
                    a.gini
                        .total_cmp(&b.gini)
                        .then(a.threshold.total_cmp(&b.threshold))
                })
                .unwrap();
            let whole_best = whole.best().unwrap();
            assert_eq!(halves_best.threshold, whole_best.threshold, "cut={cut}");
            assert!((halves_best.gini - whole_best.gini).abs() < 1e-12);
        }
    }

    #[test]
    fn threshold_consistent_with_predicate() {
        // Adjacent f32 values where the midpoint rounds down to the lower
        // value: the chosen threshold must still send the lower value left.
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        let mut s = ContinuousScan::fresh(vec![1, 1]);
        s.push(a, 0);
        s.push(b, 1);
        let t = s.best().unwrap().threshold;
        assert!(a < t, "lower value must satisfy x < t");
        assert!(b >= t, "upper value must fail x < t");
    }

    #[test]
    #[should_panic(expected = "below counts exceed total")]
    fn scan_rejects_bad_prefix() {
        ContinuousScan::new(vec![1, 0], vec![2, 0], None);
    }
}

/// A candidate binary subset split of a categorical attribute.
///
/// The paper's footnote to §2: "It is also possible to form two partitions
/// for a categorical attribute each characterized by a subset of values in
/// its domain" — the SPRINT/SLIQ subsetting variant. `left_mask` bit `v`
/// set means domain value `v` goes to the left child.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubsetSplit {
    /// Weighted-impurity score of the two-way partition under the chosen
    /// criterion.
    pub gini: f64,
    /// Bitmask of domain values routed to the left child.
    pub left_mask: u64,
}

/// Above this cardinality the subset search switches from exhaustive
/// enumeration (`2^(m-1) − 1` candidates) to SPRINT's greedy hill climb.
pub const SUBSET_EXHAUSTIVE_LIMIT: usize = 12;

/// Best binary subset split of the categorical count matrix, or `None` when
/// fewer than two domain values are populated.
///
/// Deterministic: exhaustive search scans masks in increasing order keeping
/// strict improvements (lowest mask wins ties); the greedy fallback moves
/// values in increasing index order. Values with zero records are never
/// placed in the left subset, so empty domain values (and unseen values at
/// prediction time) always route right.
pub fn best_subset_split(matrix: &CountMatrix) -> Option<SubsetSplit> {
    best_subset_split_with(matrix, Criterion::Gini)
}

/// [`best_subset_split`] under an explicit splitting criterion.
pub fn best_subset_split_with(matrix: &CountMatrix, criterion: Criterion) -> Option<SubsetSplit> {
    let m = matrix.partitions();
    assert!(m <= 64, "subset splits support up to 64 domain values");
    let nonempty: Vec<usize> = (0..m)
        .filter(|&v| matrix.row(v).iter().any(|&c| c > 0))
        .collect();
    if nonempty.len() < 2 {
        return None;
    }
    let total = matrix.class_totals();
    let classes = matrix.classes();

    let gini_of_mask = |mask: u64| {
        let mut below = vec![0u64; classes];
        for &v in &nonempty {
            if (mask >> v) & 1 == 1 {
                for (b, c) in below.iter_mut().zip(matrix.row(v)) {
                    *b += *c;
                }
            }
        }
        criterion.binary_split(&below, &total)
    };

    if nonempty.len() <= SUBSET_EXHAUSTIVE_LIMIT {
        // Exhaustive over proper subsets; fixing the first populated value
        // on the left halves the space (complements are equivalent).
        let first = nonempty[0];
        let rest = &nonempty[1..];
        let mut best: Option<SubsetSplit> = None;
        for combo in 0..(1u64 << rest.len()) {
            let mut mask = 1u64 << first;
            for (i, &v) in rest.iter().enumerate() {
                if (combo >> i) & 1 == 1 {
                    mask |= 1 << v;
                }
            }
            // The full set is not a split.
            if mask.count_ones() as usize == nonempty.len() {
                continue;
            }
            let g = gini_of_mask(mask);
            if best.is_none_or(|b| g < b.gini || (g == b.gini && mask < b.left_mask)) {
                best = Some(SubsetSplit {
                    gini: g,
                    left_mask: mask,
                });
            }
        }
        best
    } else {
        // SPRINT's greedy hill climb: grow the left subset one value at a
        // time while gini improves.
        let mut left = 0u64;
        let mut best_gini = f64::INFINITY;
        loop {
            let mut move_best: Option<(f64, u64)> = None;
            for &v in &nonempty {
                if (left >> v) & 1 == 1 {
                    continue;
                }
                let mask = left | (1 << v);
                if mask.count_ones() as usize == nonempty.len() {
                    continue;
                }
                let g = gini_of_mask(mask);
                if move_best.is_none_or(|(bg, bm)| g < bg || (g == bg && mask < bm)) {
                    move_best = Some((g, mask));
                }
            }
            match move_best {
                Some((g, mask)) if g < best_gini => {
                    best_gini = g;
                    left = mask;
                }
                _ => break,
            }
        }
        if left == 0 {
            None
        } else {
            Some(SubsetSplit {
                gini: best_gini,
                left_mask: left,
            })
        }
    }
}

#[cfg(test)]
mod subset_tests {
    use super::*;

    fn matrix(rows: &[&[u64]]) -> CountMatrix {
        let classes = rows[0].len();
        let flat: Vec<u64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        CountMatrix::from_slice(rows.len(), classes, &flat)
    }

    #[test]
    fn subset_separates_perfectly_when_possible() {
        // Values {0,2} pure class 0; value {1} pure class 1.
        let m = matrix(&[&[5, 0], &[0, 4], &[3, 0]]);
        let s = best_subset_split(&m).unwrap();
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.left_mask, 0b101);
    }

    #[test]
    fn subset_none_when_single_value() {
        let m = matrix(&[&[5, 5], &[0, 0]]);
        assert_eq!(best_subset_split(&m), None);
    }

    #[test]
    fn subset_beats_or_equals_per_value_partitioning_for_binary_problems() {
        // With 2 classes, the best binary subset is at least as good as the
        // m-way split is for routing (gini of m-way can be lower, but the
        // subset must beat any single-value-out split).
        let m = matrix(&[&[8, 2], &[1, 9], &[7, 3], &[2, 8]]);
        let s = best_subset_split(&m).unwrap();
        // Grouping {0,2} vs {1,3} is the natural best.
        assert_eq!(s.left_mask, 0b0101);
        // Check against every single-value split.
        for v in 0..4u64 {
            let mut below = vec![0u64; 2];
            for (b, c) in below.iter_mut().zip(m.row(v as usize)) {
                *b += *c;
            }
            let g = binary_split_gini(&below, &m.class_totals());
            assert!(s.gini <= g + 1e-12);
        }
    }

    #[test]
    fn subset_never_puts_empty_values_left() {
        let m = matrix(&[&[4, 0], &[0, 0], &[0, 4]]);
        let s = best_subset_split(&m).unwrap();
        assert_eq!(s.left_mask & 0b010, 0, "empty value 1 must route right");
    }

    #[test]
    fn greedy_matches_exhaustive_on_easy_case() {
        // Force the greedy path by building > SUBSET_EXHAUSTIVE_LIMIT values
        // where the answer is obvious: even values class 0, odd class 1.
        let rows: Vec<Vec<u64>> = (0..14)
            .map(|v| if v % 2 == 0 { vec![3, 0] } else { vec![0, 3] })
            .collect();
        let refs: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = matrix(&refs);
        let s = best_subset_split(&m).unwrap();
        assert_eq!(s.gini, 0.0);
        // One side holds exactly the even values (or the odds — the greedy
        // grows from the best single move, value 0).
        assert_eq!(s.left_mask, 0b01010101010101);
    }

    #[test]
    fn exhaustive_tie_break_is_lowest_mask() {
        // Symmetric data: several masks achieve the same gini; the lowest
        // mask containing the first populated value must win.
        let m = matrix(&[&[2, 2], &[2, 2], &[2, 2]]);
        let s = best_subset_split(&m).unwrap();
        assert_eq!(s.left_mask, 0b001);
    }
}

#[cfg(test)]
mod packed_scan_tests {
    use super::*;
    use crate::list::ContEntry;

    /// Deterministic pseudo-random (value, class) streams with heavy ties.
    fn stream(seed: u64, n: usize, classes: usize) -> Vec<ContEntry> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut v: Vec<ContEntry> = (0..n)
            .map(|i| ContEntry {
                // Small domain => many equal-value runs.
                value: (next() % 17) as f32 / 4.0,
                rid: i as u32,
                class: (next() % classes as u64) as u16,
            })
            .collect();
        crate::list::sort_cont(&mut v);
        v
    }

    #[test]
    fn scan_packed_matches_push_bit_for_bit() {
        for seed in 0..24u64 {
            let classes = 2 + (seed % 3) as usize;
            let n = 1 + (seed as usize * 13) % 300;
            let seg = stream(seed, n, classes);
            let total = {
                let mut h = vec![0u64; classes];
                for e in &seg {
                    h[e.class as usize] += 1;
                }
                h
            };
            let mut pushed = ContinuousScan::fresh(total.clone());
            for e in &seg {
                pushed.push(e.value, e.class as u8);
            }
            let mut packed = ContinuousScan::fresh(total);
            packed.scan_packed(&seg);
            assert_eq!(pushed.best(), packed.best(), "seed {seed}");
            assert_eq!(pushed.below(), packed.below(), "seed {seed}");
            assert_eq!(
                pushed.prev_value().map(f32::to_bits),
                packed.prev_value().map(f32::to_bits),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn scan_packed_mid_list_resume_matches_push() {
        // The parallel formulation starts scans mid-list with prior counts.
        let seg = stream(7, 200, 2);
        let total = {
            let mut h = vec![0u64; 2];
            for e in &seg {
                h[e.class as usize] += 1;
            }
            h
        };
        for cut in [1usize, 50, 199] {
            let (lo, hi) = seg.split_at(cut);
            let mut below = vec![0u64; 2];
            for e in lo {
                below[e.class as usize] += 1;
            }
            let prev = lo.last().map(|e| e.value);
            let mut pushed = ContinuousScan::new(total.clone(), below.clone(), prev);
            for e in hi {
                pushed.push(e.value, e.class as u8);
            }
            let mut packed = ContinuousScan::new(total.clone(), below, prev);
            packed.scan_packed(hi);
            assert_eq!(pushed.best(), packed.best(), "cut {cut}");
            assert_eq!(pushed.below(), packed.below(), "cut {cut}");
        }
    }
}
