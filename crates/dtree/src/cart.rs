//! CART/C4.5-style induction that **re-sorts continuous attributes at every
//! node** — the expensive approach the paper contrasts with SPRINT's
//! one-time presort (§1: "classifiers such as CART and C4.5 perform sorting
//! at every node of the decision tree, which makes them very expensive for
//! large datasets").
//!
//! The splitting criterion and tie-breaking are identical to
//! [`crate::sprint`], so both classifiers induce the *same tree*; only the
//! amount of sorting work differs. The `ABL-PRESORT` ablation benchmark
//! measures that difference.

use crate::data::{AttrKind, Dataset};
use crate::gini::{ContinuousScan, CountMatrix};
use crate::split::{categorical_candidate, SplitOptions};
use crate::tree::{BestSplit, DecisionTree, Node, SplitTest, StopRules};

/// Configuration of CART-style induction.
#[derive(Clone, Copy, Debug, Default)]
pub struct CartConfig {
    /// Stopping rules (same semantics as SPRINT's).
    pub stop: StopRules,
    /// Candidate generation options (categorical mode, criterion).
    pub split: SplitOptions,
}

/// Counters describing a CART-style induction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CartStats {
    /// Total elements passed through per-node sorts — the work SPRINT's
    /// presort avoids.
    pub sorted_elements: u64,
    /// Number of per-node sort invocations.
    pub sorts: u64,
}

/// Induce a decision tree, re-sorting at every node.
pub fn induce(data: &Dataset, cfg: &CartConfig) -> DecisionTree {
    induce_with_stats(data, cfg).0
}

/// Induce a tree, also returning sorting-work statistics.
pub fn induce_with_stats(data: &Dataset, cfg: &CartConfig) -> (DecisionTree, CartStats) {
    let schema = data.schema.clone();
    let mut stats = CartStats::default();
    let mut nodes = vec![Node::leaf(0, data.class_hist())];

    // Breadth-first with the same canonical ordering as SPRINT, so node ids
    // match exactly.
    let mut level: Vec<(u32, Vec<u32>)> = Vec::new();
    if !data.is_empty() && !cfg.stop.pre_split_leaf(&nodes[0].hist, 0) {
        level.push((0, (0..data.len() as u32).collect()));
    }

    while !level.is_empty() {
        let mut next = Vec::new();
        for (node_id, rids) in level {
            let depth = nodes[node_id as usize].depth;
            let hist = nodes[node_id as usize].hist.clone();
            let parent_gini = cfg.split.criterion.impurity(&hist);

            let best = find_best_split(data, &rids, &hist, cfg.split, &mut stats);
            let split = match best {
                Some(b) if !cfg.stop.insufficient_gain(parent_gini, b.gini) => b,
                _ => continue,
            };

            let arity = split.test.arity(&schema);
            let mut child_rids: Vec<Vec<u32>> = (0..arity).map(|_| Vec::new()).collect();
            let mut child_hists = vec![vec![0u64; hist.len()]; arity];
            for &rid in &rids {
                let c = split.test.route(data, rid as usize);
                child_rids[c].push(rid);
                child_hists[c][data.labels[rid as usize] as usize] += 1;
            }

            let parent_majority = nodes[node_id as usize].majority;
            let mut children = Vec::with_capacity(arity);
            for (h, r) in child_hists.into_iter().zip(child_rids) {
                let id = nodes.len() as u32;
                let n: u64 = h.iter().sum();
                let mut child = Node::leaf(depth + 1, h.clone());
                if n == 0 {
                    child.majority = parent_majority;
                }
                nodes.push(child);
                children.push(id);
                if n > 0 && !cfg.stop.pre_split_leaf(&h, depth + 1) {
                    next.push((id, r));
                }
            }
            let parent = &mut nodes[node_id as usize];
            parent.test = Some(split.test);
            parent.children = children;
        }
        level = next;
    }

    (DecisionTree { schema, nodes }, stats)
}

fn find_best_split(
    data: &Dataset,
    rids: &[u32],
    hist: &[u64],
    opts: SplitOptions,
    stats: &mut CartStats,
) -> Option<BestSplit> {
    let mut best: Option<BestSplit> = None;
    for (attr, def) in data.schema.attrs.iter().enumerate() {
        let candidate = match def.kind {
            AttrKind::Continuous => {
                // The costly step: materialize and sort this node's values.
                let mut pairs: Vec<(f32, u32)> = rids
                    .iter()
                    .map(|&rid| (data.continuous_value(attr, rid as usize), rid))
                    .collect();
                pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                stats.sorted_elements += pairs.len() as u64;
                stats.sorts += 1;
                let mut scan = ContinuousScan::fresh(hist.to_vec()).with_criterion(opts.criterion);
                for &(v, rid) in &pairs {
                    scan.push(v, data.labels[rid as usize]);
                }
                scan.best().map(|c| BestSplit {
                    gini: c.gini,
                    test: SplitTest::Continuous {
                        attr,
                        threshold: c.threshold,
                    },
                })
            }
            AttrKind::Categorical { cardinality } => {
                let mut m = CountMatrix::new(cardinality as usize, hist.len());
                for &rid in rids {
                    m.add(
                        data.categorical_value(attr, rid as usize) as usize,
                        data.labels[rid as usize] as usize,
                    );
                }
                categorical_candidate(attr, &m, opts)
            }
        };
        best = BestSplit::better(best, candidate);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{AttrDef, Column, Schema};
    use crate::sprint::{self, SprintConfig};

    fn xor_data() -> Dataset {
        let schema = Schema::new(vec![AttrDef::continuous("x"), AttrDef::continuous("y")], 2);
        Dataset::new(
            schema,
            vec![
                Column::Continuous(vec![0.0, 0.0, 1.0, 1.0, 0.1, 0.1, 0.9, 0.9]),
                Column::Continuous(vec![0.0, 1.0, 0.0, 1.0, 0.1, 0.9, 0.1, 0.9]),
            ],
            vec![0, 1, 1, 0, 0, 1, 1, 0],
        )
    }

    #[test]
    fn cart_solves_xor() {
        let tree = induce(&xor_data(), &CartConfig::default());
        tree.validate();
        assert_eq!(tree.accuracy(&xor_data()), 1.0);
    }

    #[test]
    fn cart_tree_equals_sprint_tree() {
        let data = xor_data();
        let cart = induce(&data, &CartConfig::default());
        let sprint = sprint::induce(&data, &SprintConfig::default());
        assert_eq!(cart, sprint);
    }

    #[test]
    fn cart_tree_equals_sprint_tree_mixed_attrs() {
        let schema = Schema::new(
            vec![
                AttrDef::continuous("x"),
                AttrDef::categorical("g", 3),
                AttrDef::continuous("y"),
            ],
            3,
        );
        // Deterministic pseudo-random data with a learnable structure.
        let n = 120;
        let mut xs = Vec::new();
        let mut gs = Vec::new();
        let mut ys = Vec::new();
        let mut labels = Vec::new();
        let mut state = 12345u64;
        let mut rand = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..n {
            let x = (rand() % 1000) as f32 / 10.0;
            let g = rand() % 3;
            let y = (rand() % 1000) as f32 / 10.0;
            let label = if x < 40.0 {
                0
            } else if g == 2 {
                1
            } else if y < 60.0 {
                2
            } else {
                0
            };
            xs.push(x);
            gs.push(g);
            ys.push(y);
            labels.push(label as u8);
        }
        let data = Dataset::new(
            schema,
            vec![
                Column::Continuous(xs),
                Column::Categorical(gs),
                Column::Continuous(ys),
            ],
            labels,
        );
        let cart = induce(&data, &CartConfig::default());
        let sprint = sprint::induce(&data, &SprintConfig::default());
        assert_eq!(cart, sprint);
        assert!(cart.accuracy(&data) > 0.95);
    }

    #[test]
    fn cart_sorting_work_exceeds_presort() {
        let data = xor_data();
        let (_, stats) = induce_with_stats(&data, &CartConfig::default());
        // Presort would sort 2 lists × 8 entries = 16 elements; re-sorting at
        // every node does strictly more once the tree has ≥ 2 levels.
        assert!(stats.sorted_elements > 16, "got {}", stats.sorted_elements);
        assert!(stats.sorts >= 4);
    }
}
