//! The decision-tree model: nodes, split tests, prediction, and the
//! canonical comparison of candidate splits shared by every classifier in
//! this workspace (serial SPRINT, CART-style, parallel SPRINT, ScalParC).
//!
//! All classifiers must produce *identical* trees on identical data — the
//! integration tests rely on it — so the tie-breaking rule for equal-gini
//! candidates is defined once here: lower `gini` wins, then lower attribute
//! index, then lower threshold.

use std::cmp::Ordering;

use crate::data::{AttrKind, Dataset, Schema};

/// The decision at an internal node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SplitTest {
    /// Binary test `A < threshold`: child 0 on success, child 1 otherwise.
    Continuous {
        /// Attribute index.
        attr: usize,
        /// Threshold `v` of `A < v`.
        threshold: f32,
    },
    /// m-way categorical test: a record with value `v` goes to child `v`
    /// (one partition per domain value, paper §2).
    Categorical {
        /// Attribute index.
        attr: usize,
    },
    /// Binary subset test on a categorical attribute (the paper's footnote
    /// variant): values whose `left_mask` bit is set go to child 0, the
    /// rest — including values unseen in training — to child 1.
    CategoricalSubset {
        /// Attribute index.
        attr: usize,
        /// Bitmask of domain values routed left.
        left_mask: u64,
    },
}

impl SplitTest {
    /// The attribute this test examines.
    pub fn attr(&self) -> usize {
        match self {
            SplitTest::Continuous { attr, .. }
            | SplitTest::Categorical { attr }
            | SplitTest::CategoricalSubset { attr, .. } => *attr,
        }
    }

    /// Which child a record goes to.
    pub fn route(&self, data: &Dataset, rid: usize) -> usize {
        match *self {
            SplitTest::Continuous { attr, threshold } => {
                usize::from(data.continuous_value(attr, rid) >= threshold)
            }
            SplitTest::Categorical { attr } => data.categorical_value(attr, rid) as usize,
            SplitTest::CategoricalSubset { attr, left_mask } => {
                usize::from((left_mask >> data.categorical_value(attr, rid)) & 1 == 0)
            }
        }
    }

    /// Number of children this test creates under `schema`.
    pub fn arity(&self, schema: &Schema) -> usize {
        match *self {
            SplitTest::Continuous { .. } | SplitTest::CategoricalSubset { .. } => 2,
            SplitTest::Categorical { attr } => match schema.attrs[attr].kind {
                AttrKind::Categorical { cardinality } => cardinality as usize,
                AttrKind::Continuous => panic!("categorical test on continuous attribute"),
            },
        }
    }

    /// Total-order key for deterministic tie-breaking among equal-gini
    /// candidates: attribute index, then test kind, then a kind-specific
    /// discriminator (total-ordered threshold bits / subset mask).
    fn order_key(&self) -> (usize, u8, u64) {
        match *self {
            SplitTest::Categorical { attr } => (attr, 0, 0),
            SplitTest::CategoricalSubset { attr, left_mask } => (attr, 1, left_mask),
            SplitTest::Continuous { attr, threshold } => {
                // IEEE-754 total-order trick so negative thresholds sort
                // below positive ones.
                let bits = threshold.to_bits();
                let key = if bits & 0x8000_0000 != 0 {
                    !bits
                } else {
                    bits | 0x8000_0000
                };
                (attr, 2, key as u64)
            }
        }
    }
}

/// A candidate split with its impurity score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BestSplit {
    /// The split's weighted-impurity score under the active criterion
    /// (gini by default; entropy when configured). Named `gini` after the
    /// paper's criterion; lower is better under either.
    pub gini: f64,
    /// The test realizing it.
    pub test: SplitTest,
}

impl BestSplit {
    /// Canonical total order on candidates: gini, then the test's order
    /// key (attribute index, kind, threshold/mask).
    /// Every classifier in the workspace breaks ties with this order, which
    /// is what makes their trees identical.
    #[allow(clippy::should_implement_trait)] // deliberate: f64 keeps us off Ord
    pub fn cmp(&self, other: &BestSplit) -> Ordering {
        self.gini
            .total_cmp(&other.gini)
            .then_with(|| self.test.order_key().cmp(&other.test.order_key()))
    }

    /// Keep the better (lower) of two optional candidates.
    pub fn better(a: Option<BestSplit>, b: Option<BestSplit>) -> Option<BestSplit> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if y.cmp(&x) == Ordering::Less { y } else { x }),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

/// Stopping rules for tree induction (`FindSplitII` applies these — paper §4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StopRules {
    /// Nodes at this depth are never split (root has depth 0).
    pub max_depth: u32,
    /// Nodes with fewer records are never split.
    pub min_records: u64,
    /// Required strict improvement `gini(parent) − gini_split`. The paper's
    /// classifiers split until leaves are pure, accepting zero-gain splits
    /// (e.g. the first level of an XOR concept), so the default is negative:
    /// any candidate split is taken. Set `0.0` or higher to demand real
    /// impurity reduction (a pre-pruning heuristic).
    pub min_gain: f64,
}

impl Default for StopRules {
    fn default() -> Self {
        StopRules {
            max_depth: 1_000,
            min_records: 2,
            min_gain: -1.0,
        }
    }
}

impl StopRules {
    /// True when a node with the given histogram/depth must become a leaf
    /// before even searching for a split.
    pub fn pre_split_leaf(&self, hist: &[u64], depth: u32) -> bool {
        let n: u64 = hist.iter().sum();
        let pure = hist.iter().filter(|&&c| c > 0).count() <= 1;
        pure || n < self.min_records || depth >= self.max_depth
    }

    /// True when a found split does not improve impurity enough.
    pub fn insufficient_gain(&self, parent_gini: f64, split_gini: f64) -> bool {
        // NaN-conservative: any non-comparable gain counts as insufficient.
        (parent_gini - split_gini).partial_cmp(&self.min_gain) != Some(Ordering::Greater)
    }
}

/// One node of a decision tree.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// Depth from the root (root = 0).
    pub depth: u32,
    /// Class histogram of the training records that reached this node.
    pub hist: Vec<u64>,
    /// Majority class (lowest class index on ties).
    pub majority: u8,
    /// The split test; `None` for leaves.
    pub test: Option<SplitTest>,
    /// Child node ids, aligned with the test's partitions.
    pub children: Vec<u32>,
}

impl Node {
    /// Construct a (leaf) node from a histogram.
    pub fn leaf(depth: u32, hist: Vec<u64>) -> Self {
        let majority = majority_class(&hist);
        Node {
            depth,
            hist,
            majority,
            test: None,
            children: Vec::new(),
        }
    }

    /// Number of training records at this node.
    pub fn n(&self) -> u64 {
        self.hist.iter().sum()
    }

    /// True when this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// Majority class of a histogram (lowest index on ties; 0 if empty).
pub fn majority_class(hist: &[u64]) -> u8 {
    let mut best = 0usize;
    for (i, &c) in hist.iter().enumerate() {
        if c > hist[best] {
            best = i;
        }
    }
    best as u8
}

/// An induced decision tree (induction step only; see [`crate::prune`] for
/// the pruning step).
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionTree {
    /// Schema the tree was trained under.
    pub schema: Schema,
    /// Node arena; the root is node 0.
    pub nodes: Vec<Node>,
}

impl DecisionTree {
    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Number of internal (decision) nodes.
    pub fn num_internal(&self) -> usize {
        self.nodes.len() - self.num_leaves()
    }

    /// Maximum node depth.
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Predict the class of record `rid` of `data` (which must share the
    /// training schema's shape) by walking the node arena.
    ///
    /// This is the workspace's **reference oracle**: batch evaluation
    /// ([`DecisionTree::accuracy`], `eval::confusion_matrix`) routes through
    /// the compiled [`crate::flat::FlatTree`] kernel, which a proptest pins
    /// to this walk record-for-record.
    pub fn predict(&self, data: &Dataset, rid: usize) -> u8 {
        let mut node = &self.nodes[0];
        while let Some(test) = node.test {
            let child = test.route(data, rid);
            node = &self.nodes[node.children[child] as usize];
        }
        node.majority
    }

    /// Fraction of records of `data` whose label the tree predicts.
    /// Compiles the tree and scores through the batched flat kernel
    /// ([`crate::flat::FlatTree::predict_batch`]); callers that already hold
    /// a compiled tree should use [`crate::flat::FlatTree::accuracy`].
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        crate::flat::FlatTree::compile(self).accuracy(data)
    }

    /// Render an indented textual form (for examples and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(0, &mut out);
        out
    }

    fn render_node(&self, id: u32, out: &mut String) {
        let node = &self.nodes[id as usize];
        let pad = "  ".repeat(node.depth as usize);
        match node.test {
            None => {
                out.push_str(&format!(
                    "{pad}leaf class={} n={} hist={:?}\n",
                    node.majority,
                    node.n(),
                    node.hist
                ));
            }
            Some(SplitTest::Continuous { attr, threshold }) => {
                out.push_str(&format!(
                    "{pad}if {} < {threshold} (n={})\n",
                    self.schema.attrs[attr].name,
                    node.n()
                ));
                for &c in &node.children {
                    self.render_node(c, out);
                }
            }
            Some(SplitTest::Categorical { attr }) => {
                out.push_str(&format!(
                    "{pad}switch {} (n={})\n",
                    self.schema.attrs[attr].name,
                    node.n()
                ));
                for &c in &node.children {
                    self.render_node(c, out);
                }
            }
            Some(SplitTest::CategoricalSubset { attr, left_mask }) => {
                out.push_str(&format!(
                    "{pad}if {} in {:#b} (n={})\n",
                    self.schema.attrs[attr].name,
                    left_mask,
                    node.n()
                ));
                for &c in &node.children {
                    self.render_node(c, out);
                }
            }
        }
    }

    /// Structural sanity check used by tests: children exist, depths are
    /// consistent, child histograms sum to the parent's, arity matches the
    /// test.
    pub fn validate(&self) {
        assert!(!self.nodes.is_empty(), "tree has no nodes");
        for (id, node) in self.nodes.iter().enumerate() {
            match node.test {
                None => assert!(node.children.is_empty(), "leaf {id} has children"),
                Some(test) => {
                    assert_eq!(
                        node.children.len(),
                        test.arity(&self.schema),
                        "node {id} arity mismatch"
                    );
                    let mut sum = vec![0u64; node.hist.len()];
                    for &c in &node.children {
                        let child = &self.nodes[c as usize];
                        assert_eq!(child.depth, node.depth + 1, "child depth mismatch");
                        for (s, h) in sum.iter_mut().zip(&child.hist) {
                            *s += h;
                        }
                    }
                    assert_eq!(sum, node.hist, "node {id} child histograms do not sum");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{AttrDef, Column};

    fn toy_schema() -> Schema {
        Schema::new(
            vec![AttrDef::continuous("x"), AttrDef::categorical("g", 3)],
            2,
        )
    }

    fn hand_tree() -> DecisionTree {
        // root: x < 2.5 ? leaf(0) : leaf(1)
        DecisionTree {
            schema: toy_schema(),
            nodes: vec![
                Node {
                    depth: 0,
                    hist: vec![2, 2],
                    majority: 0,
                    test: Some(SplitTest::Continuous {
                        attr: 0,
                        threshold: 2.5,
                    }),
                    children: vec![1, 2],
                },
                Node::leaf(1, vec![2, 0]),
                Node::leaf(1, vec![0, 2]),
            ],
        }
    }

    #[test]
    fn prediction_routes_correctly() {
        let t = hand_tree();
        let d = Dataset::new(
            toy_schema(),
            vec![
                Column::Continuous(vec![1.0, 2.0, 3.0, 4.0]),
                Column::Categorical(vec![0, 1, 2, 1]),
            ],
            vec![0, 0, 1, 1],
        );
        assert_eq!(t.predict(&d, 0), 0);
        assert_eq!(t.predict(&d, 3), 1);
        assert_eq!(t.accuracy(&d), 1.0);
        t.validate();
    }

    #[test]
    fn majority_prefers_lowest_on_tie() {
        assert_eq!(majority_class(&[3, 3]), 0);
        assert_eq!(majority_class(&[1, 5, 5]), 1);
        assert_eq!(majority_class(&[]), 0);
    }

    #[test]
    fn best_split_ordering() {
        let a = BestSplit {
            gini: 0.1,
            test: SplitTest::Continuous {
                attr: 0,
                threshold: 5.0,
            },
        };
        let b = BestSplit {
            gini: 0.1,
            test: SplitTest::Continuous {
                attr: 0,
                threshold: 2.0,
            },
        };
        let c = BestSplit {
            gini: 0.05,
            test: SplitTest::Categorical { attr: 1 },
        };
        assert_eq!(c.cmp(&a), Ordering::Less);
        assert_eq!(b.cmp(&a), Ordering::Less); // lower threshold wins ties
        assert_eq!(BestSplit::better(Some(a), Some(c)).unwrap(), c);
        assert_eq!(BestSplit::better(None, Some(a)).unwrap(), a);
        assert_eq!(BestSplit::better(Some(a), None).unwrap(), a);
        assert_eq!(BestSplit::better(None, None), None);
    }

    #[test]
    fn stop_rules() {
        let r = StopRules::default();
        assert!(r.pre_split_leaf(&[5, 0], 0)); // pure
        assert!(r.pre_split_leaf(&[1, 0], 0)); // too small
        assert!(!r.pre_split_leaf(&[3, 2], 0));
        let shallow = StopRules {
            max_depth: 1,
            ..StopRules::default()
        };
        assert!(shallow.pre_split_leaf(&[3, 2], 1));
        // Default rules accept zero-gain splits (paper: split until pure).
        assert!(!r.insufficient_gain(0.5, 0.5));
        assert!(!r.insufficient_gain(0.5, 0.4));
        let strict = StopRules {
            min_gain: 0.0,
            ..StopRules::default()
        };
        assert!(strict.insufficient_gain(0.5, 0.5));
        assert!(!strict.insufficient_gain(0.5, 0.4));
    }

    #[test]
    fn arity_and_route() {
        let schema = toy_schema();
        let cont = SplitTest::Continuous {
            attr: 0,
            threshold: 2.5,
        };
        let cat = SplitTest::Categorical { attr: 1 };
        assert_eq!(cont.arity(&schema), 2);
        assert_eq!(cat.arity(&schema), 3);
        let d = Dataset::new(
            schema,
            vec![
                Column::Continuous(vec![2.4, 2.5]),
                Column::Categorical(vec![2, 0]),
            ],
            vec![0, 1],
        );
        assert_eq!(cont.route(&d, 0), 0);
        assert_eq!(cont.route(&d, 1), 1); // x >= threshold goes right
        assert_eq!(cat.route(&d, 0), 2);
    }

    #[test]
    #[should_panic(expected = "do not sum")]
    fn validate_catches_bad_histograms() {
        let mut t = hand_tree();
        t.nodes[1].hist = vec![1, 0];
        t.validate();
    }
}

impl DecisionTree {
    /// Impurity-decrease feature importance (a.k.a. gini importance): for
    /// each attribute, the total `n/N`-weighted impurity decrease of the
    /// nodes splitting on it, normalized to sum to 1 (all zeros for a
    /// single-leaf tree). `criterion` should match the one used to induce.
    pub fn feature_importance(&self, criterion: crate::gini::Criterion) -> Vec<f64> {
        let mut imp = vec![0.0f64; self.schema.num_attrs()];
        let total = self.root().n() as f64;
        if total == 0.0 {
            return imp;
        }
        for node in &self.nodes {
            let Some(test) = node.test else { continue };
            let n = node.n() as f64;
            let parent = criterion.impurity(&node.hist);
            let children: f64 = node
                .children
                .iter()
                .map(|&c| {
                    let ch = &self.nodes[c as usize];
                    (ch.n() as f64 / n) * criterion.impurity(&ch.hist)
                })
                .sum();
            imp[test.attr()] += (n / total) * (parent - children).max(0.0);
        }
        let sum: f64 = imp.iter().sum();
        if sum > 0.0 {
            for x in &mut imp {
                *x /= sum;
            }
        }
        imp
    }
}

#[cfg(test)]
mod importance_tests {
    use super::*;
    use crate::data::{AttrDef, Column, Dataset};
    use crate::gini::Criterion;
    use crate::sprint::{self, SprintConfig};

    #[test]
    fn importance_concentrates_on_the_informative_attribute() {
        let schema = Schema::new(
            vec![AttrDef::continuous("signal"), AttrDef::continuous("junk")],
            2,
        );
        let n = 200usize;
        let signal: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let junk: Vec<f32> = (0..n).map(|i| ((i * 7919) % n) as f32).collect();
        let labels: Vec<u8> = (0..n).map(|i| u8::from(i >= n / 2)).collect();
        let data = Dataset::new(
            schema,
            vec![Column::Continuous(signal), Column::Continuous(junk)],
            labels,
        );
        let tree = sprint::induce(&data, &SprintConfig::default());
        let imp = tree.feature_importance(Criterion::Gini);
        assert!(imp[0] > 0.95, "{imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_leaf_tree_has_zero_importance() {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let data = Dataset::new(schema, vec![Column::Continuous(vec![1.0, 2.0])], vec![1, 1]);
        let tree = sprint::induce(&data, &SprintConfig::default());
        assert_eq!(tree.feature_importance(Criterion::Gini), vec![0.0]);
    }
}
