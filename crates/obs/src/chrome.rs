//! Chrome `trace_event` export: one process (pid) per rank, thread 0 for
//! phase spans (nesting allowed), thread 1 for communication events
//! (disjoint). Timestamps are the **virtual** clock in microseconds
//! (fractional, so nanosecond resolution survives), loadable in
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).

use crate::json::{self, Json};
use crate::recorder::RankTrace;

/// Thread id of phase spans within a rank's process.
pub const TID_PHASES: u64 = 0;
/// Thread id of communication events within a rank's process.
pub const TID_COMM: u64 = 1;
/// Thread id of injected fault events within a rank's process (present
/// only when the rank observed faults).
pub const TID_FAULTS: u64 = 2;
/// Thread id of injected *storage* fault events (checkpoint-file
/// corruption, `ckpt_*` kinds) within a rank's process — their own track,
/// so snapshot damage reads separately from transport faults (present only
/// when the rank observed storage faults).
pub const TID_STORAGE_FAULTS: u64 = 3;

fn micros(ns: u64) -> Json {
    // Exact: 1 ns = 0.001 µs, and f64 holds ns counts < 2^53 exactly.
    Json::F64(ns as f64 / 1000.0)
}

fn complete_event(
    name: &str,
    pid: usize,
    tid: u64,
    start_ns: u64,
    end_ns: u64,
    args: Vec<(String, Json)>,
) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("X")),
        ("pid".into(), Json::U64(pid as u64)),
        ("tid".into(), Json::U64(tid)),
        ("ts".into(), micros(start_ns)),
        ("dur".into(), micros(end_ns.saturating_sub(start_ns))),
        ("args".into(), Json::Obj(args)),
    ])
}

fn metadata_event(name: &str, pid: usize, tid: Option<u64>, label: &str) -> Json {
    let mut fields = vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("M")),
        ("pid".into(), Json::U64(pid as u64)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), Json::U64(tid)));
    }
    fields.push((
        "args".into(),
        Json::Obj(vec![("name".into(), Json::str(label))]),
    ));
    Json::Obj(fields)
}

/// Render the traces (one per rank, indexed by rank) as a Chrome
/// `trace_event` JSON document.
pub fn chrome_trace(traces: &[&RankTrace]) -> String {
    let mut events = Vec::new();
    for (rank, t) in traces.iter().enumerate() {
        events.push(metadata_event(
            "process_name",
            rank,
            None,
            &format!("rank {rank}"),
        ));
        events.push(metadata_event(
            "thread_name",
            rank,
            Some(TID_PHASES),
            "phases",
        ));
        events.push(metadata_event(
            "thread_name",
            rank,
            Some(TID_COMM),
            "collectives",
        ));

        // Spans are recorded in completion order (children first); sort by
        // (start, widest-first) so parents precede their children, as the
        // trace_event format expects for nested complete events.
        let mut spans: Vec<_> = t.spans.iter().collect();
        spans.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.end_ns.cmp(&a.end_ns))
                .then(a.depth.cmp(&b.depth))
        });
        for s in spans {
            let name = if s.level > 0 {
                format!("{} L{}", s.name, s.level)
            } else {
                s.name.to_string()
            };
            events.push(complete_event(
                &name,
                rank,
                TID_PHASES,
                s.start_ns,
                s.end_ns,
                vec![
                    ("level".into(), Json::U64(s.level as u64)),
                    ("compute_ns".into(), Json::U64(s.excl.compute_ns)),
                    ("comm_ns".into(), Json::U64(s.excl.comm_ns)),
                    ("bytes_sent".into(), Json::U64(s.excl.bytes_sent)),
                    ("bytes_recv".into(), Json::U64(s.excl.bytes_recv)),
                ],
            ));
        }
        for e in &t.colls {
            events.push(complete_event(
                e.name,
                rank,
                TID_COMM,
                e.start_ns,
                e.end_ns,
                vec![
                    ("bytes_sent".into(), Json::U64(e.bytes_sent)),
                    ("bytes_recv".into(), Json::U64(e.bytes_recv)),
                    ("comm_ns".into(), Json::U64(e.comm_ns)),
                ],
            ));
        }
        // Injected faults get their own lane so the delay they add is
        // visible against the phase/collective timelines; storage faults
        // (checkpoint-file corruption, `ckpt_*` kinds) get a further lane
        // of their own, since they damage snapshots rather than messages.
        // Each lane (and its name) only exists on ranks that observed
        // faults of that kind.
        let is_storage = |kind: &str| kind.starts_with("ckpt_");
        for (tid, lane) in [
            (TID_FAULTS, "faults"),
            (TID_STORAGE_FAULTS, "storage faults"),
        ] {
            let mut named = false;
            for f in t
                .faults
                .iter()
                .filter(|f| (tid == TID_STORAGE_FAULTS) == is_storage(f.kind))
            {
                if !named {
                    events.push(metadata_event("thread_name", rank, Some(tid), lane));
                    named = true;
                }
                events.push(complete_event(
                    f.kind,
                    rank,
                    tid,
                    f.start_ns,
                    f.start_ns + f.delay_ns,
                    vec![
                        ("coll_seq".into(), Json::U64(f.coll_seq)),
                        ("delay_ns".into(), Json::U64(f.delay_ns)),
                    ],
                ));
            }
        }
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ns")),
    ])
    .render_pretty()
}

/// Validate Chrome-trace text: well-formed JSON with a `traceEvents`
/// array; every `"X"` event carries pid/tid/ts/dur; and per `(pid, tid)`
/// lane, events (in start order) are monotone and either properly nested
/// (phase lane) or non-overlapping (other lanes). Returns the number of
/// `"X"` events checked.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;

    // Collect complete events per (pid, tid) lane, in document order.
    type Lane = Vec<(f64, f64, String)>;
    let mut lanes: Vec<((u64, u64), Lane)> = Vec::new();
    let mut checked = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        if ph != "X" {
            continue;
        }
        checked += 1;
        let field = |k: &str| {
            ev.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric `{k}`"))
        };
        let (pid, tid) = (field("pid")? as u64, field("tid")? as u64);
        let (ts, dur) = (field("ts")?, field("dur")?);
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing `name`"));
        }
        if !(ts >= 0.0 && dur >= 0.0) {
            return Err(format!("event {i}: negative ts/dur"));
        }
        let name = ev.get("name").unwrap().as_str().unwrap().to_string();
        match lanes.iter_mut().find(|(key, _)| *key == (pid, tid)) {
            Some((_, lane)) => lane.push((ts, dur, name)),
            None => lanes.push(((pid, tid), vec![(ts, dur, name)])),
        }
    }

    // ts is in µs with ns resolution; tolerate one representation ulp.
    const EPS: f64 = 1e-6;
    for ((pid, tid), lane) in &lanes {
        let mut stack: Vec<(f64, f64)> = Vec::new(); // (start, end)
        let mut last_start = f64::NEG_INFINITY;
        for (ts, dur, name) in lane {
            if *ts < last_start - EPS {
                return Err(format!(
                    "pid {pid} tid {tid}: `{name}` starts at {ts} before previous start {last_start} (not monotone)"
                ));
            }
            last_start = *ts;
            let end = ts + dur;
            while let Some(&(_, open_end)) = stack.last() {
                if *ts >= open_end - EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_start, open_end)) = stack.last() {
                if *tid != TID_PHASES {
                    return Err(format!(
                        "pid {pid} tid {tid}: `{name}` overlaps the previous event"
                    ));
                }
                if end > open_end + EPS || *ts < open_start - EPS {
                    return Err(format!(
                        "pid {pid} tid {tid}: `{name}` [{ts}, {end}] not nested in [{open_start}, {open_end}]"
                    ));
                }
            }
            stack.push((*ts, end));
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counters, Recorder, TraceConfig};

    fn c(clock: u64, comm: u64, sent: u64) -> Counters {
        Counters {
            clock_ns: clock,
            compute_ns: clock - comm,
            comm_ns: comm,
            bytes_sent: sent,
            bytes_recv: sent,
            peak_mem: 0,
        }
    }

    fn two_rank_trace() -> Vec<RankTrace> {
        (0..2)
            .map(|rank| {
                let mut r = Recorder::enabled(rank, 2, TraceConfig::default());
                r.span_begin("presort", 0, c(0, 0, 0));
                r.span_begin("sample_sort", 0, c(100, 0, 0));
                r.collective("alltoallv", c(150, 0, 0), c(400, 250, 64));
                r.span_end(c(500, 250, 64));
                r.span_end(c(700, 250, 64));
                r.span_begin("find_split", 1, c(700, 250, 64));
                r.span_end(c(900, 300, 96));
                r.finish(c(1000, 300, 96)).unwrap()
            })
            .collect()
    }

    #[test]
    fn export_is_valid_and_nested() {
        let traces = two_rank_trace();
        let refs: Vec<&RankTrace> = traces.iter().collect();
        let text = chrome_trace(&refs);
        // 2 ranks × (3 spans + 1 coll) = 8 complete events.
        assert_eq!(validate_chrome_trace(&text), Ok(8));
        // Levelled span names carry the level; metadata names the ranks.
        assert!(text.contains("find_split L1"), "{text}");
        assert!(text.contains("rank 1"), "{text}");
    }

    #[test]
    fn validator_rejects_overlap_and_non_monotone() {
        // Overlapping (not nested) events on the phase lane.
        let bad_nest = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0.0,"dur":10.0,"args":{}},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":5.0,"dur":10.0,"args":{}}
        ]}"#;
        assert!(validate_chrome_trace(bad_nest)
            .unwrap_err()
            .contains("not nested"));
        // Any overlap at all on the collective lane.
        let bad_overlap = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":1,"ts":0.0,"dur":10.0,"args":{}},
            {"name":"b","ph":"X","pid":0,"tid":1,"ts":5.0,"dur":2.0,"args":{}}
        ]}"#;
        assert!(validate_chrome_trace(bad_overlap)
            .unwrap_err()
            .contains("overlaps"));
        // Start timestamps running backwards.
        let bad_order = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":10.0,"dur":1.0,"args":{}},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":0.0,"dur":1.0,"args":{}}
        ]}"#;
        assert!(validate_chrome_trace(bad_order)
            .unwrap_err()
            .contains("monotone"));
        // Structurally broken documents.
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[1").is_err());
    }

    #[test]
    fn validator_accepts_disjoint_lanes_across_ranks() {
        let ok = r#"{"traceEvents":[
            {"name":"m","ph":"M","pid":0,"args":{"name":"rank 0"}},
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0.0,"dur":10.0,"args":{}},
            {"name":"a","ph":"X","pid":1,"tid":0,"ts":0.0,"dur":10.0,"args":{}},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":10.0,"dur":5.0,"args":{}}
        ]}"#;
        assert_eq!(validate_chrome_trace(ok), Ok(3));
    }
}
