//! The per-rank recorder: spans (phases, virtual-clock stamped, nesting
//! allowed), collective events, and per-peer byte attribution.

/// Monotone counter snapshot handed to the recorder by the machine at each
/// instrumentation point. The recorder never reads clocks itself — it only
/// differences snapshots, so it works for any monotone counter source
/// (simulated or wall).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Virtual clock (compute + communication + wait), ns.
    pub clock_ns: u64,
    /// Accumulated compute time, ns.
    pub compute_ns: u64,
    /// Accumulated communication + synchronization time, ns.
    pub comm_ns: u64,
    /// Bytes sent so far.
    pub bytes_sent: u64,
    /// Bytes received so far.
    pub bytes_recv: u64,
    /// Peak tracked memory so far.
    pub peak_mem: u64,
}

/// Differences between two [`Counters`] snapshots. `peak_mem` is a
/// high-water delta (how much the peak rose over the interval), the rest
/// are plain monotone differences.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deltas {
    /// Compute time attributed to the interval, ns.
    pub compute_ns: u64,
    /// Communication + wait time attributed to the interval, ns.
    pub comm_ns: u64,
    /// Bytes sent during the interval.
    pub bytes_sent: u64,
    /// Bytes received during the interval.
    pub bytes_recv: u64,
    /// Rise of the memory high-water mark during the interval.
    pub peak_mem: u64,
}

impl Deltas {
    /// `later - earlier`, field-wise. Panics (in debug and release) on a
    /// counter regression: the recorder's exactness guarantee is void if a
    /// counter ever runs backwards, so that is a bug worth a loud stop.
    pub fn between(earlier: Counters, later: Counters) -> Deltas {
        let sub = |a: u64, b: u64, what: &str| {
            a.checked_sub(b)
                .unwrap_or_else(|| panic!("obs: counter `{what}` regressed ({a} < {b})"))
        };
        Deltas {
            compute_ns: sub(later.compute_ns, earlier.compute_ns, "compute_ns"),
            comm_ns: sub(later.comm_ns, earlier.comm_ns, "comm_ns"),
            bytes_sent: sub(later.bytes_sent, earlier.bytes_sent, "bytes_sent"),
            bytes_recv: sub(later.bytes_recv, earlier.bytes_recv, "bytes_recv"),
            peak_mem: sub(later.peak_mem, earlier.peak_mem, "peak_mem"),
        }
    }

    /// Field-wise accumulation.
    pub fn add(&mut self, other: Deltas) {
        self.compute_ns += other.compute_ns;
        self.comm_ns += other.comm_ns;
        self.bytes_sent += other.bytes_sent;
        self.bytes_recv += other.bytes_recv;
        self.peak_mem += other.peak_mem;
    }
}

/// One closed span: a named phase on a rank's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Phase name (static: span names are a closed vocabulary, not data).
    pub name: &'static str,
    /// Caller-chosen detail, by convention the tree level (0 when n/a).
    pub level: u32,
    /// Nesting depth at begin (0 = top level).
    pub depth: u16,
    /// Virtual-clock begin, ns.
    pub start_ns: u64,
    /// Virtual-clock end, ns.
    pub end_ns: u64,
    /// Exclusive deltas: this span minus its child spans. Exclusive deltas
    /// over all spans partition the rank's counters exactly.
    pub excl: Deltas,
    /// Inclusive deltas: plain begin→end difference (covers children).
    pub incl: Deltas,
}

/// One collective (or point-to-point) communication event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollRec {
    /// Collective kind (`"allreduce"`, `"alltoallv"`, `"send"`, …).
    pub name: &'static str,
    /// Virtual-clock begin (compute stopped), ns.
    pub start_ns: u64,
    /// Virtual-clock end (modelled cost + sync wait charged), ns.
    pub end_ns: u64,
    /// Bytes this rank sent in the operation.
    pub bytes_sent: u64,
    /// Bytes this rank received in the operation.
    pub bytes_recv: u64,
    /// Communication time charged: modelled cost plus synchronization
    /// wait behind slower ranks, ns.
    pub comm_ns: u64,
}

/// One injected fault observed by a rank (straggler delay, detected
/// drop/corrupt retransmission). Crashes never appear here: a crashed
/// attempt's trace dies with the machine; fault logs come from runs that
/// survive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRec {
    /// Fault kind (`"straggler"`, `"drop"`, `"corrupt"`).
    pub kind: &'static str,
    /// 1-based collective sequence number the fault hit.
    pub coll_seq: u64,
    /// Virtual-clock start of the injected delay, ns.
    pub start_ns: u64,
    /// Injected delay, ns.
    pub delay_ns: u64,
}

/// Everything one rank recorded; lives in `RankStats::trace` after a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankTrace {
    /// The recording rank.
    pub rank: usize,
    /// Ranks in the run (row length of the byte vectors).
    pub procs: usize,
    /// Closed spans in completion order.
    pub spans: Vec<SpanRec>,
    /// Communication events in issue order.
    pub colls: Vec<CollRec>,
    /// Bytes this rank sent, by destination. The diagonal entry
    /// (`sent_to[rank]`) aggregates collapsed tree-collective traffic whose
    /// per-peer routing the cost model does not resolve (see DESIGN.md §7).
    pub sent_to: Vec<u64>,
    /// Bytes this rank received, by source; diagonal as for `sent_to`.
    pub recv_from: Vec<u64>,
    /// Injected fault events in occurrence order.
    pub faults: Vec<FaultRec>,
    /// Spans dropped because `span_capacity` was reached.
    pub dropped_spans: u64,
    /// Events dropped because `coll_capacity` was reached.
    pub dropped_colls: u64,
    /// Fault events dropped because `fault_capacity` was reached.
    pub dropped_faults: u64,
    /// Spans still open at `finish` (0 in correct instrumentation; closed
    /// forcibly at the final counters and counted here).
    pub unclosed_spans: usize,
}

/// Capacities for the preallocated per-rank recording buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum spans retained per rank; extras are dropped and counted.
    pub span_capacity: usize,
    /// Maximum communication events retained per rank; extras are dropped
    /// and counted. Per-peer byte attribution is never dropped.
    pub coll_capacity: usize,
    /// Maximum injected-fault events retained per rank; extras are dropped
    /// and counted.
    pub fault_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            span_capacity: 1 << 14,
            coll_capacity: 1 << 16,
            fault_capacity: 1 << 12,
        }
    }
}

/// An open span awaiting its end.
#[derive(Clone, Copy, Debug)]
struct Frame {
    name: &'static str,
    level: u32,
    start: Counters,
    /// Counters at the last attribution boundary (own begin, or the most
    /// recent child end): the next delta from here is *this* span's own.
    mark: Counters,
    /// Exclusive deltas accumulated so far.
    acc: Deltas,
}

/// Per-rank recorder. Disabled recorders hold no heap memory and every
/// method on them is a no-op; enabled recorders never allocate after
/// construction (fixed capacities, drop-and-count past them).
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    trace: RankTrace,
    open: Vec<Frame>,
    /// Begins dropped at open-stack capacity whose matching ends are still
    /// outstanding; those ends must be swallowed, not pop a parent frame.
    dropped_open: u32,
}

impl Recorder {
    /// A recorder that records nothing and owns nothing.
    pub fn disabled() -> Recorder {
        Recorder {
            enabled: false,
            trace: RankTrace::default(),
            open: Vec::new(),
            dropped_open: 0,
        }
    }

    /// A recording recorder for `rank` of `procs`, with all buffers
    /// preallocated up front.
    pub fn enabled(rank: usize, procs: usize, cfg: TraceConfig) -> Recorder {
        Recorder {
            enabled: true,
            trace: RankTrace {
                rank,
                procs,
                spans: Vec::with_capacity(cfg.span_capacity),
                colls: Vec::with_capacity(cfg.coll_capacity),
                sent_to: vec![0; procs],
                recv_from: vec![0; procs],
                faults: Vec::with_capacity(cfg.fault_capacity),
                dropped_spans: 0,
                dropped_colls: 0,
                dropped_faults: 0,
                unclosed_spans: 0,
            },
            open: Vec::with_capacity(32),
            dropped_open: 0,
        }
    }

    /// Whether this recorder records anything. Callers use this to skip
    /// snapshot work (e.g. locking the memory tracker) when disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span at counters `c`.
    pub fn span_begin(&mut self, name: &'static str, level: u32, c: Counters) {
        if !self.enabled {
            return;
        }
        // Time since the parent's mark belongs to the parent, exclusively.
        if let Some(parent) = self.open.last_mut() {
            parent.acc.add(Deltas::between(parent.mark, c));
            parent.mark = c;
        }
        if self.open.len() == self.open.capacity() {
            // Nesting deeper than the preallocated stack: drop the span
            // rather than allocate. The interval lands in the parent's
            // exclusive time; the matching end is swallowed below.
            self.trace.dropped_spans += 1;
            self.dropped_open += 1;
            return;
        }
        self.open.push(Frame {
            name,
            level,
            start: c,
            mark: c,
            acc: Deltas::default(),
        });
    }

    /// Close the innermost open span at counters `c`.
    pub fn span_end(&mut self, c: Counters) {
        if !self.enabled {
            return;
        }
        if self.dropped_open > 0 {
            // LIFO: the innermost outstanding end matches a dropped begin.
            self.dropped_open -= 1;
            return;
        }
        let Some(mut frame) = self.open.pop() else {
            return; // unmatched end: ignore
        };
        frame.acc.add(Deltas::between(frame.mark, c));
        self.push_span(SpanRec {
            name: frame.name,
            level: frame.level,
            depth: self.open.len() as u16,
            start_ns: frame.start.clock_ns,
            end_ns: c.clock_ns,
            excl: frame.acc,
            incl: Deltas::between(frame.start, c),
        });
        // The child's interval is spent; the parent's own time resumes now.
        if let Some(parent) = self.open.last_mut() {
            parent.mark = c;
        }
    }

    fn push_span(&mut self, span: SpanRec) {
        if self.trace.spans.len() < self.trace.spans.capacity() {
            self.trace.spans.push(span);
        } else {
            self.trace.dropped_spans += 1;
        }
    }

    /// Record one communication event spanning `start`→`end`.
    pub fn collective(&mut self, name: &'static str, start: Counters, end: Counters) {
        if !self.enabled {
            return;
        }
        let d = Deltas::between(start, end);
        let rec = CollRec {
            name,
            start_ns: start.clock_ns,
            end_ns: end.clock_ns,
            bytes_sent: d.bytes_sent,
            bytes_recv: d.bytes_recv,
            comm_ns: d.comm_ns,
        };
        if self.trace.colls.len() < self.trace.colls.capacity() {
            self.trace.colls.push(rec);
        } else {
            self.trace.dropped_colls += 1;
        }
    }

    /// Record one injected fault (straggler delay or detected
    /// drop/corrupt retransmission) spanning
    /// `start_ns → start_ns + delay_ns`.
    pub fn fault(&mut self, kind: &'static str, coll_seq: u64, start_ns: u64, delay_ns: u64) {
        if !self.enabled {
            return;
        }
        if self.trace.faults.len() < self.trace.faults.capacity() {
            self.trace.faults.push(FaultRec {
                kind,
                coll_seq,
                start_ns,
                delay_ns,
            });
        } else {
            self.trace.dropped_faults += 1;
        }
    }

    /// Attribute `bytes` sent to peer `dst`.
    #[inline]
    pub fn sent(&mut self, dst: usize, bytes: u64) {
        if self.enabled {
            self.trace.sent_to[dst] += bytes;
        }
    }

    /// Attribute `bytes` received from peer `src`.
    #[inline]
    pub fn recv(&mut self, src: usize, bytes: u64) {
        if self.enabled {
            self.trace.recv_from[src] += bytes;
        }
    }

    /// Attribute `bytes` of collapsed collective traffic with no single
    /// peer (tree reductions and the like) to the diagonal bucket.
    #[inline]
    pub fn sent_aggregate(&mut self, bytes: u64) {
        if self.enabled {
            let r = self.trace.rank;
            self.trace.sent_to[r] += bytes;
        }
    }

    /// Receive-side twin of [`Recorder::sent_aggregate`].
    #[inline]
    pub fn recv_aggregate(&mut self, bytes: u64) {
        if self.enabled {
            let r = self.trace.rank;
            self.trace.recv_from[r] += bytes;
        }
    }

    /// Close out the trace at the rank's final counters. Dangling spans are
    /// force-closed (and counted in `unclosed_spans`) so the exclusive
    /// partition of the counters stays exact. Returns `None` when disabled.
    pub fn finish(mut self, final_c: Counters) -> Option<RankTrace> {
        if !self.enabled {
            return None;
        }
        while !self.open.is_empty() {
            self.span_end(final_c);
            self.trace.unclosed_spans += 1;
        }
        Some(self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(clock: u64, compute: u64, comm: u64, sent: u64, recv: u64, peak: u64) -> Counters {
        Counters {
            clock_ns: clock,
            compute_ns: compute,
            comm_ns: comm,
            bytes_sent: sent,
            bytes_recv: recv,
            peak_mem: peak,
        }
    }

    #[test]
    fn disabled_recorder_records_nothing_and_owns_nothing() {
        let mut r = Recorder::disabled();
        assert!(!r.is_enabled());
        // A disabled recorder must hold no heap memory at all.
        assert_eq!(r.trace.spans.capacity(), 0);
        assert_eq!(r.trace.colls.capacity(), 0);
        assert_eq!(r.trace.sent_to.capacity(), 0);
        assert_eq!(r.trace.recv_from.capacity(), 0);
        assert_eq!(r.trace.faults.capacity(), 0);
        assert_eq!(r.open.capacity(), 0);
        r.span_begin("phase", 3, c(0, 0, 0, 0, 0, 0));
        r.collective("allreduce", c(0, 0, 0, 0, 0, 0), c(9, 0, 9, 8, 8, 0));
        r.sent(0, 100);
        r.recv(0, 100);
        r.sent_aggregate(7);
        r.recv_aggregate(7);
        r.fault("drop", 1, 0, 9);
        r.span_end(c(10, 5, 5, 8, 8, 0));
        assert_eq!(r.trace.spans.capacity(), 0);
        assert_eq!(r.trace.faults.capacity(), 0);
        assert!(r.finish(c(10, 5, 5, 8, 8, 0)).is_none());
    }

    #[test]
    fn nested_spans_attribute_exclusively() {
        let mut r = Recorder::enabled(0, 1, TraceConfig::default());
        r.span_begin("outer", 0, c(0, 0, 0, 0, 0, 0));
        r.span_begin("inner", 1, c(10, 10, 0, 0, 0, 0));
        r.span_end(c(30, 20, 10, 64, 64, 100)); // inner: 20ns (10c+10m), 64B
        r.span_end(c(50, 40, 10, 64, 64, 100)); // outer resumes for 20ns compute
        let t = r.finish(c(60, 50, 10, 64, 64, 100)).unwrap();
        assert_eq!(t.spans.len(), 2);
        let inner = &t.spans[0];
        let outer = &t.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.depth, 1);
        assert_eq!((inner.start_ns, inner.end_ns), (10, 30));
        assert_eq!(inner.excl.compute_ns, 10);
        assert_eq!(inner.excl.comm_ns, 10);
        assert_eq!(inner.excl.bytes_sent, 64);
        assert_eq!(inner.excl.peak_mem, 100);
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        // Outer exclusive = [0,10) + [30,50): 10+20 compute, no comm.
        assert_eq!(outer.excl.compute_ns, 30);
        assert_eq!(outer.excl.comm_ns, 0);
        assert_eq!(outer.excl.bytes_sent, 0);
        // Outer inclusive covers the child.
        assert_eq!(outer.incl.compute_ns, 40);
        assert_eq!(outer.incl.comm_ns, 10);
        // Exclusive deltas partition the instrumented interval exactly.
        let sum: u64 = t.spans.iter().map(|s| s.excl.compute_ns).sum();
        assert_eq!(sum, 40);
        assert_eq!(t.unclosed_spans, 0);
    }

    #[test]
    fn dangling_span_is_closed_at_finish_and_counted() {
        let mut r = Recorder::enabled(0, 1, TraceConfig::default());
        r.span_begin("left-open", 0, c(5, 5, 0, 0, 0, 0));
        let t = r.finish(c(25, 20, 5, 0, 0, 0)).unwrap();
        assert_eq!(t.unclosed_spans, 1);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].end_ns, 25);
        assert_eq!(t.spans[0].excl.compute_ns, 15);
    }

    #[test]
    fn capacity_overflow_drops_and_counts_without_reallocating() {
        let cfg = TraceConfig {
            span_capacity: 2,
            coll_capacity: 1,
            fault_capacity: 1,
        };
        let mut r = Recorder::enabled(0, 2, cfg);
        for i in 0..4 {
            let t0 = c(i * 10, i * 10, 0, 0, 0, 0);
            let t1 = c(i * 10 + 5, i * 10 + 5, 0, 0, 0, 0);
            r.span_begin("s", 0, t0);
            r.span_end(t1);
            r.collective("barrier", t1, t1);
            r.fault("corrupt", i + 1, i * 10, 1);
        }
        let t = r.finish(c(100, 100, 0, 0, 0, 0)).unwrap();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans.capacity(), 2);
        assert_eq!(t.dropped_spans, 2);
        assert_eq!(t.colls.len(), 1);
        assert_eq!(t.colls.capacity(), 1);
        assert_eq!(t.dropped_colls, 3);
        assert_eq!(t.faults.len(), 1);
        assert_eq!(t.faults.capacity(), 1);
        assert_eq!(t.dropped_faults, 3);
    }

    #[test]
    fn peer_attribution_accumulates() {
        let mut r = Recorder::enabled(1, 4, TraceConfig::default());
        r.sent(0, 10);
        r.sent(0, 5);
        r.sent(3, 7);
        r.recv(2, 11);
        r.sent_aggregate(100);
        r.recv_aggregate(200);
        let t = r.finish(c(0, 0, 0, 0, 0, 0)).unwrap();
        assert_eq!(t.sent_to, vec![15, 100, 0, 7]);
        assert_eq!(t.recv_from, vec![0, 200, 11, 0]);
    }

    #[test]
    #[should_panic(expected = "regressed")]
    fn counter_regression_panics() {
        let _ = Deltas::between(c(10, 10, 0, 0, 0, 0), c(5, 5, 0, 0, 0, 0));
    }
}
