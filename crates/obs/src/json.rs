//! A minimal JSON value: one escaping/formatting implementation shared by
//! every exporter and bench bin (replacing N hand-rolled emitters), plus a
//! small strict parser so CI can validate what the exporters wrote.
//!
//! Unsigned and signed integers are kept as integer tokens end to end —
//! byte counts and nanosecond clocks must not round-trip through `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer, emitted without precision loss.
    U64(u64),
    /// Negative (or any signed) integer, emitted without precision loss.
    I64(i64),
    /// Finite float; non-finite values are emitted as `null` (JSON has no
    /// `inf`/`nan` tokens).
    F64(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep a float token so readers see a float-typed field.
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document; rejects trailing garbage. Errors carry a byte
/// offset and a short description.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|_| Json::Null),
            Some(b't') => self.eat_literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // exporters; reject rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep UTF-8 intact.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_variant() {
        let doc = Json::Obj(vec![
            ("null".into(), Json::Null),
            ("bool".into(), Json::Bool(true)),
            ("u64".into(), Json::U64(u64::MAX)),
            ("i64".into(), Json::I64(-42)),
            ("f64".into(), Json::F64(1.5)),
            ("str".into(), Json::str("a\"b\\c\nd\te\u{1}é")),
            (
                "arr".into(),
                Json::Arr(vec![Json::U64(1), Json::Arr(vec![]), Json::Obj(vec![])]),
            ),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn large_u64_survives_exactly() {
        let v = u64::MAX - 3;
        let text = Json::U64(v).render();
        assert_eq!(text, format!("{v}"));
        assert_eq!(parse(&text).unwrap().as_u64(), Some(v));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escaped_strings_parse_back() {
        assert_eq!(
            parse(r#""aA\n\t\"\\\/""#).unwrap(),
            Json::str("aA\n\t\"\\/")
        );
    }

    #[test]
    fn accessors_work() {
        let doc = parse(r#"{"rows":[{"p":4,"t":1.25}]}"#).unwrap();
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("p").unwrap().as_u64(), Some(4));
        assert_eq!(rows[0].get("t").unwrap().as_f64(), Some(1.25));
        assert!(doc.get("missing").is_none());
    }
}
