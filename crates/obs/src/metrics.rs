//! Per-phase rollups, the p×p communication matrix, and the versioned
//! metrics-JSON document used by every bench bin.

use crate::json::{self, Json};
use crate::recorder::{Deltas, RankTrace};

/// Schema tag every metrics document carries; bump on breaking changes.
pub const METRICS_SCHEMA: &str = "scalparc-metrics/v1";

/// Name under which the residue (counters not covered by any span) is
/// reported, so rollups always sum to the rank totals exactly.
pub const UNTRACKED: &str = "(untracked)";

/// A rank's end-of-run counter totals, as reported by the machine
/// (`RankStats`). `obs` takes these as plain numbers to stay independent
/// of the simulator's types.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankTotals {
    /// Final virtual clock, ns.
    pub clock_ns: u64,
    /// Total compute time, ns.
    pub compute_ns: u64,
    /// Total communication + wait time, ns.
    pub comm_ns: u64,
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total bytes received.
    pub bytes_recv: u64,
    /// Peak tracked memory, bytes.
    pub peak_mem: u64,
}

/// Aggregated exclusive deltas of one `(phase, level)` key on one rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRollup {
    /// Phase (span) name.
    pub name: &'static str,
    /// Tree level (0 for level-less phases).
    pub level: u32,
    /// Spans aggregated into this entry.
    pub calls: u64,
    /// Exclusive deltas summed over those spans.
    pub totals: Deltas,
}

/// Per-rank rollup: one entry per `(phase, level)` in first-appearance
/// order, closed by an [`UNTRACKED`] residue entry, so the entries sum to
/// the rank's totals exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct RankRollup {
    /// The rank.
    pub rank: usize,
    /// Phase entries, `(untracked)` last.
    pub phases: Vec<PhaseRollup>,
}

impl RankRollup {
    /// Field-wise sum over all entries (equals the rank totals).
    pub fn sum(&self) -> Deltas {
        let mut total = Deltas::default();
        for p in &self.phases {
            total.add(p.totals);
        }
        total
    }
}

/// Aggregate a rank's spans into per-`(phase, level)` exclusive totals plus
/// the untracked residue.
///
/// Panics if the spans' exclusive deltas exceed the rank totals — that
/// would mean the recorder's partition invariant is broken, and silently
/// clamping would hide exactly the bug the parity tests exist to catch.
pub fn rollup_rank(trace: &RankTrace, totals: &RankTotals) -> RankRollup {
    let mut phases: Vec<PhaseRollup> = Vec::new();
    for span in &trace.spans {
        match phases
            .iter_mut()
            .find(|p| p.name == span.name && p.level == span.level)
        {
            Some(entry) => {
                entry.calls += 1;
                entry.totals.add(span.excl);
            }
            None => phases.push(PhaseRollup {
                name: span.name,
                level: span.level,
                calls: 1,
                totals: span.excl,
            }),
        }
    }
    let mut tracked = Deltas::default();
    for p in &phases {
        tracked.add(p.totals);
    }
    let residue = |total: u64, got: u64, what: &str| {
        total.checked_sub(got).unwrap_or_else(|| {
            panic!(
                "obs: rank {} spans over-attribute {what}: {got} > {total}",
                trace.rank
            )
        })
    };
    phases.push(PhaseRollup {
        name: UNTRACKED,
        level: 0,
        calls: 0,
        totals: Deltas {
            compute_ns: residue(totals.compute_ns, tracked.compute_ns, "compute_ns"),
            comm_ns: residue(totals.comm_ns, tracked.comm_ns, "comm_ns"),
            bytes_sent: residue(totals.bytes_sent, tracked.bytes_sent, "bytes_sent"),
            bytes_recv: residue(totals.bytes_recv, tracked.bytes_recv, "bytes_recv"),
            peak_mem: residue(totals.peak_mem, tracked.peak_mem, "peak_mem"),
        },
    });
    RankRollup {
        rank: trace.rank,
        phases,
    }
}

/// The p×p communication matrices assembled from all ranks' traces:
/// `sent[src][dst]` and `recv[dst][src]`. Row `r` of `sent` sums to rank
/// r's `bytes_sent`; row `r` of `recv` sums to its `bytes_recv`. Diagonal
/// entries hold collapsed tree-collective traffic with no single peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommMatrix {
    /// Ranks.
    pub procs: usize,
    /// Row-major `sent[src * procs + dst]`.
    pub sent: Vec<u64>,
    /// Row-major `recv[dst * procs + src]`.
    pub recv: Vec<u64>,
}

impl CommMatrix {
    /// Build from one trace per rank (indexed by rank).
    pub fn from_traces(traces: &[&RankTrace]) -> CommMatrix {
        let procs = traces.len();
        let mut m = CommMatrix {
            procs,
            sent: vec![0; procs * procs],
            recv: vec![0; procs * procs],
        };
        for (r, t) in traces.iter().enumerate() {
            assert_eq!(t.rank, r, "traces must be indexed by rank");
            assert_eq!(t.sent_to.len(), procs);
            m.sent[r * procs..(r + 1) * procs].copy_from_slice(&t.sent_to);
            m.recv[r * procs..(r + 1) * procs].copy_from_slice(&t.recv_from);
        }
        m
    }

    /// Bytes rank `src` sent, by destination.
    pub fn sent_row(&self, src: usize) -> &[u64] {
        &self.sent[src * self.procs..(src + 1) * self.procs]
    }

    /// Bytes rank `dst` received, by source.
    pub fn recv_row(&self, dst: usize) -> &[u64] {
        &self.recv[dst * self.procs..(dst + 1) * self.procs]
    }

    /// Total bytes rank `src` sent.
    pub fn sent_total(&self, src: usize) -> u64 {
        self.sent_row(src).iter().sum()
    }

    /// Total bytes rank `dst` received.
    pub fn recv_total(&self, dst: usize) -> u64 {
        self.recv_row(dst).iter().sum()
    }

    /// JSON form: `{"procs": p, "sent": [[..]..], "recv": [[..]..]}`.
    pub fn to_json(&self) -> Json {
        let rows = |m: &[u64]| {
            Json::Arr(
                (0..self.procs)
                    .map(|r| {
                        Json::Arr(
                            m[r * self.procs..(r + 1) * self.procs]
                                .iter()
                                .map(|&b| Json::U64(b))
                                .collect(),
                        )
                    })
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("procs".into(), Json::U64(self.procs as u64)),
            ("sent".into(), rows(&self.sent)),
            ("recv".into(), rows(&self.recv)),
        ])
    }
}

/// Builder for the versioned metrics document every bench bin emits:
///
/// ```json
/// {
///   "schema": "scalparc-metrics/v1",
///   "bench": "<bin name>",
///   "config": { ... },       // free-form run parameters
///   "rows": [ {..}, {..} ],  // the bin's table, one object per row
///   "detail": { ... }        // optional bin-specific extras
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MetricsDoc {
    bench: String,
    config: Vec<(String, Json)>,
    rows: Vec<Json>,
    detail: Vec<(String, Json)>,
}

impl MetricsDoc {
    /// Start a document for bench bin `bench`.
    pub fn new(bench: &str) -> MetricsDoc {
        MetricsDoc {
            bench: bench.to_string(),
            config: Vec::new(),
            rows: Vec::new(),
            detail: Vec::new(),
        }
    }

    /// Record a run parameter under `config`.
    pub fn config(&mut self, key: &str, value: Json) -> &mut Self {
        self.config.push((key.to_string(), value));
        self
    }

    /// Append one table row (an object of named cells).
    pub fn row(&mut self, cells: Vec<(&str, Json)>) -> &mut Self {
        self.rows.push(Json::Obj(
            cells.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        ));
        self
    }

    /// Attach a bin-specific section under `detail`.
    pub fn detail(&mut self, key: &str, value: Json) -> &mut Self {
        self.detail.push((key.to_string(), value));
        self
    }

    /// The document as a [`Json`] tree.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::str(METRICS_SCHEMA)),
            ("bench".into(), Json::str(&self.bench)),
            ("config".into(), Json::Obj(self.config.clone())),
            ("rows".into(), Json::Arr(self.rows.clone())),
        ];
        if !self.detail.is_empty() {
            fields.push(("detail".into(), Json::Obj(self.detail.clone())));
        }
        Json::Obj(fields)
    }

    /// Render pretty-printed JSON text.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Write the document to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Validate metrics-JSON text: well-formed, carries the current schema
/// tag, and has a `rows` array of objects. Returns the row count.
pub fn validate_metrics(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != METRICS_SCHEMA {
        return Err(format!("schema `{schema}`, expected `{METRICS_SCHEMA}`"));
    }
    doc.get("bench")
        .and_then(Json::as_str)
        .ok_or("missing `bench`")?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing `rows` array")?;
    for (i, row) in rows.iter().enumerate() {
        if !matches!(row, Json::Obj(_)) {
            return Err(format!("rows[{i}] is not an object"));
        }
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counters, Recorder, TraceConfig};

    fn c(clock: u64, compute: u64, comm: u64, sent: u64, recv: u64, peak: u64) -> Counters {
        Counters {
            clock_ns: clock,
            compute_ns: compute,
            comm_ns: comm,
            bytes_sent: sent,
            bytes_recv: recv,
            peak_mem: peak,
        }
    }

    fn sample_trace() -> RankTrace {
        let mut r = Recorder::enabled(0, 2, TraceConfig::default());
        r.span_begin("find_split", 0, c(0, 0, 0, 0, 0, 0));
        r.span_end(c(10, 6, 4, 32, 32, 50));
        r.span_begin("find_split", 1, c(10, 6, 4, 32, 32, 50));
        r.span_end(c(30, 20, 10, 96, 96, 50));
        r.span_begin("perform_split", 1, c(30, 20, 10, 96, 96, 50));
        r.span_end(c(50, 30, 20, 128, 128, 80));
        r.finish(c(60, 38, 22, 128, 128, 90)).unwrap()
    }

    #[test]
    fn rollup_sums_to_rank_totals_exactly() {
        let trace = sample_trace();
        let totals = RankTotals {
            clock_ns: 60,
            compute_ns: 38,
            comm_ns: 22,
            bytes_sent: 128,
            bytes_recv: 128,
            peak_mem: 90,
        };
        let rollup = rollup_rank(&trace, &totals);
        // (find_split,0), (find_split,1), (perform_split,1), (untracked).
        assert_eq!(rollup.phases.len(), 4);
        assert_eq!(rollup.phases[0].calls, 1);
        assert_eq!(rollup.phases[3].name, UNTRACKED);
        // Residue: 60-50 clock = 8 compute + 2 comm after the last span.
        assert_eq!(rollup.phases[3].totals.compute_ns, 8);
        assert_eq!(rollup.phases[3].totals.comm_ns, 2);
        assert_eq!(rollup.phases[3].totals.peak_mem, 10);
        let sum = rollup.sum();
        assert_eq!(sum.compute_ns, totals.compute_ns);
        assert_eq!(sum.comm_ns, totals.comm_ns);
        assert_eq!(sum.bytes_sent, totals.bytes_sent);
        assert_eq!(sum.bytes_recv, totals.bytes_recv);
        assert_eq!(sum.peak_mem, totals.peak_mem);
    }

    #[test]
    #[should_panic(expected = "over-attribute")]
    fn rollup_panics_when_spans_exceed_totals() {
        let trace = sample_trace();
        let totals = RankTotals {
            compute_ns: 1, // spans attribute 38
            ..Default::default()
        };
        let _ = rollup_rank(&trace, &totals);
    }

    #[test]
    fn comm_matrix_rows_sum_per_rank() {
        let mut r0 = Recorder::enabled(0, 2, TraceConfig::default());
        r0.sent(1, 100);
        r0.sent_aggregate(8);
        r0.recv(1, 40);
        let t0 = r0.finish(Counters::default()).unwrap();
        let mut r1 = Recorder::enabled(1, 2, TraceConfig::default());
        r1.sent(0, 40);
        r1.recv(0, 100);
        r1.recv_aggregate(8);
        let t1 = r1.finish(Counters::default()).unwrap();
        let m = CommMatrix::from_traces(&[&t0, &t1]);
        assert_eq!(m.sent_row(0), &[8, 100]);
        assert_eq!(m.recv_row(1), &[100, 8]);
        assert_eq!(m.sent_total(0), 108);
        assert_eq!(m.recv_total(0), 40);
        let j = m.to_json().render();
        assert!(j.contains("\"procs\":2"), "{j}");
    }

    #[test]
    fn metrics_doc_roundtrips_and_validates() {
        let mut doc = MetricsDoc::new("fig3a");
        doc.config("n", Json::U64(100_000))
            .config("algorithm", Json::str("scalparc"));
        doc.row(vec![("procs", Json::U64(4)), ("time_s", Json::F64(1.5))]);
        doc.row(vec![("procs", Json::U64(8)), ("time_s", Json::F64(0.9))]);
        let text = doc.render();
        assert_eq!(validate_metrics(&text), Ok(2));
        let parsed = json::parse(&text).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(METRICS_SCHEMA));
        assert_eq!(
            parsed.get("config").unwrap().get("n").unwrap().as_u64(),
            Some(100_000)
        );
    }

    #[test]
    fn validate_rejects_wrong_schema_and_shape() {
        assert!(validate_metrics("{}").is_err());
        assert!(validate_metrics(r#"{"schema":"other/v9","bench":"x","rows":[]}"#).is_err());
        assert!(
            validate_metrics(r#"{"schema":"scalparc-metrics/v1","bench":"x","rows":[1]}"#).is_err()
        );
        assert_eq!(
            validate_metrics(r#"{"schema":"scalparc-metrics/v1","bench":"x","rows":[]}"#),
            Ok(0)
        );
    }
}
