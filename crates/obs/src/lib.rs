//! Observability for the simulated machine: per-rank span/event recording
//! stamped with the **virtual** clock, per-phase metric rollups, p×p
//! communication matrices, and exporters (Chrome `trace_event` JSON for
//! Perfetto, plus a versioned machine-readable metrics JSON).
//!
//! Design constraints (see DESIGN.md §7):
//!
//! * **Below `mpsim` in the crate graph.** The simulator owns the clocks
//!   and byte counters; `obs` only receives [`Counters`] snapshots. This
//!   keeps `obs` std-only and dependency-free, and lets `mpsim` depend on
//!   it without a cycle.
//! * **Strictly free when disabled.** Every recording method early-returns
//!   on a disabled [`Recorder`]; a disabled recorder holds no heap memory
//!   (`Vec::new` does not allocate) and [`Recorder::finish`] returns
//!   `None`. Simulated time, byte accounting, and steady-state allocation
//!   counts are byte-for-byte identical to a build without tracing.
//! * **Zero allocation in steady state when enabled.** Span and event
//!   storage is preallocated per rank from [`TraceConfig`] capacities;
//!   recording past capacity drops events (counted, never reallocating).
//! * **Exact attribution.** Span deltas are *exclusive* (self minus
//!   children) and partition each counter's timeline, so per-phase rollups
//!   plus the `(untracked)` residue sum to the rank totals exactly — this
//!   is pinned by the accounting-parity tests, not approximated.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod recorder;

pub use chrome::{chrome_trace, validate_chrome_trace};
pub use json::Json;
pub use metrics::{
    rollup_rank, CommMatrix, MetricsDoc, PhaseRollup, RankRollup, RankTotals, METRICS_SCHEMA,
};
pub use recorder::{
    CollRec, Counters, Deltas, FaultRec, RankTrace, Recorder, SpanRec, TraceConfig,
};
