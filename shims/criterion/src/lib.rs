//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses (benchmark groups, `bench_function`,
//! `bench_with_input`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros).
//!
//! The build container has no crates.io mirror, so the real crate cannot
//! be fetched. This harness keeps `cargo bench` runnable and reports
//! wall-clock statistics (min / mean over samples) on stdout — no HTML
//! reports, no statistical regression analysis. Benchmarks run fewer,
//! shorter samples than upstream criterion, so absolute numbers are
//! comparable only within this workspace.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// `cargo bench -- --test` compatibility: in test mode each benchmark body
/// runs exactly once, unmeasured — a smoke/compile check, mirroring real
/// criterion's `--test` flag. Set by [`criterion_main!`] from the CLI.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Enable or disable `--test` mode (normally done by [`criterion_main!`]).
pub fn set_test_mode(on: bool) {
    TEST_MODE.store(on, Ordering::Relaxed);
}

fn test_mode() -> bool {
    TEST_MODE.load(Ordering::Relaxed)
}

/// Top-level benchmark driver (normally built by [`criterion_main!`]).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Parameterized benchmark id, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2) as u64;
        self
    }

    /// Record the per-iteration throughput (cosmetic here).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// End the group (report flushing happens per-benchmark here).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: u64, f: &mut F) {
    if test_mode() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
            once: true,
        };
        f(&mut b);
        println!("test {label:<44} ok");
        return;
    }
    // Warm-up sample, never reported.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
        once: false,
    };
    f(&mut b);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
            once: false,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "bench {label:<44} min {:>12} mean {:>12} ({samples} samples)",
        fmt_time(min),
        fmt_time(mean),
    );
}

fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    once: bool,
}

impl Bencher {
    /// Time `f`, repeating it enough to smooth very fast routines.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One calibration call decides how many iterations one sample
        // aggregates (targets ~20 ms per sample, capped for slow bodies).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        if self.once {
            self.elapsed = once;
            self.iters = 1;
            return;
        }
        let reps = if once.as_secs_f64() >= 0.02 {
            1
        } else {
            ((0.02 / once.as_secs_f64().max(1e-9)) as u64).clamp(1, 10_000)
        };
        let t1 = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        self.elapsed = t1.elapsed();
        self.iters = reps;
    }
}

/// Bundle benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::set_test_mode(std::env::args().any(|a| a == "--test"));
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
