//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (`StdRng::seed_from_u64`, `gen_range` over integer and float
//! ranges, `gen_bool`).
//!
//! The container this repo builds in has no network access to a crates.io
//! mirror, so the real crate cannot be fetched; this path dependency keeps
//! the call sites source-compatible. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic across platforms, which is all the
//! data generator and tests require. Streams differ from upstream `rand`,
//! so datasets are reproducible per-seed within this workspace only.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Raw 64-bit generator.
pub trait RngCore {
    /// Next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Range of values `gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is < span/2^64 — immaterial for data
                // generation and tests.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (the workspace's deterministic default).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard seeding procedure for the
            // xoshiro family.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5..=2.5f32);
            assert!((-1.5..=2.5).contains(&f));
            let neg = rng.gen_range(-8..-3i64);
            assert!((-8..-3).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn values_spread_over_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
