//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the `proptest!` macro with `#![proptest_config(..)]`,
//! range / tuple / `prop::collection::vec` strategies, `any::<bool>()`,
//! and the `prop_assert*` macros.
//!
//! The build container has no crates.io mirror, so the real crate cannot
//! be fetched. Semantics are simplified but sound for randomized testing:
//! each test runs `cases` iterations with inputs drawn from a
//! deterministic per-test generator (FNV-seeded xorshift), and
//! `prop_assert*` maps to `assert*` — failures report the concrete inputs
//! via the assertion message rather than shrinking.

use std::ops::{Range, RangeInclusive};

/// Number-of-cases configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Iterations per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic input generator handed to [`Strategy::sample`].
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator from a test name (stable across runs).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h | 1)
    }

    /// Next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}

float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies!((A, B)(A, B, C)(A, B, C, D));

/// Strategy for a type's full value space (here: `bool` only).
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — mirror of `proptest::prelude::any`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Length specification accepted by [`prop::collection::vec`].
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Collection and combinator strategies, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy producing `Vec`s of `elem`-generated values.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// `Vec` strategy with lengths drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_exclusive - self.size.lo) as u64;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Everything the `use proptest::prelude::*;` sites need.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Property-test harness macro. Each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn cases(n: u32) -> ProptestConfig {
        ProptestConfig { cases: n }
    }

    proptest! {
        #![proptest_config(cases(16))]

        #[test]
        fn ranges_and_collections(
            p in 1usize..6,
            xs in prop::collection::vec((0u64..200, 0u8..8), 0..120),
            flag in any::<bool>(),
            exact in prop::collection::vec(0u64..1000, 7),
        ) {
            prop_assert!((1..6).contains(&p));
            prop_assert!(xs.len() < 120);
            for (a, b) in xs {
                prop_assert!(a < 200 && b < 8);
            }
            prop_assert_eq!(exact.len(), 7);
            let _ = flag;
        }

        #[test]
        fn nested_vecs_and_floats(
            chunks in prop::collection::vec(prop::collection::vec(0u32..1000, 0..80), 1..6),
            f in 0.0f64..1.0,
        ) {
            prop_assert!(!chunks.is_empty() && chunks.len() < 6);
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn default_config_runs() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x < 10);
            }
        }
        inner();
    }
}
