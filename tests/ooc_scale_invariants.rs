//! Out-of-core and packed-kernel invariants:
//!
//! * out-of-core induction produces the identical tree to the in-core path
//!   across a grid of processor counts, seeds, and classification functions;
//! * out-of-core resident memory is O(chunk): the chunk-buffer budget is
//!   independent of N, and the per-rank peak stays far below the in-core
//!   peak (whose attribute lists are O(N/p) resident);
//! * the branch-light scatter kernels (`split_by_children`,
//!   `split_directly`) are record-identical to the straightforward
//!   reference partitions under arbitrary inputs (proptest).

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::list::{AttrList, CatEntry, ContEntry, PACKED_ENTRY_BYTES};
use dtree::tree::SplitTest;
use dtree::Dataset;
use proptest::prelude::*;
use scalparc::ooc::{OocOptions, OOC_BUF_MEM};
use scalparc::phases::{
    split_by_children, split_by_children_ref, split_directly, split_directly_ref,
};
use scalparc::{induce, induce_ooc, ParConfig};

fn quest(n: usize, func: ClassFunc, seed: u64) -> Dataset {
    generate(&GenConfig {
        n,
        func,
        noise: 0.0,
        seed,
        profile: Profile::Paper7,
    })
}

fn ooc_opts(chunk: usize, tag: &str) -> OocOptions {
    OocOptions {
        chunk,
        dir: std::env::temp_dir()
            .join("scalparc-ooc-invariants")
            .join(format!("{tag}-{}", std::process::id())),
    }
}

#[test]
fn ooc_tree_identical_to_in_core_across_grid() {
    // The packed OOC pipeline (chunked scans, round-aligned table traffic,
    // streamed routing) must not change a single split anywhere in the
    // grid; accuracy identity follows from tree identity but is asserted
    // separately as the end-to-end observable.
    for (func, seed) in [
        (ClassFunc::F2, 11u64),
        (ClassFunc::F3, 12),
        (ClassFunc::F7, 13),
    ] {
        let d = quest(260, func, seed);
        for p in [1usize, 2, 4] {
            let want = induce(&d, &ParConfig::new(p));
            let got = induce_ooc(
                &d,
                &ParConfig::new(p),
                &ooc_opts(37, &format!("grid-{func:?}-{seed}-{p}")),
            );
            assert_eq!(got.tree, want.tree, "{func:?} seed={seed} p={p}");
            assert_eq!(
                got.tree.accuracy(&d),
                want.tree.accuracy(&d),
                "{func:?} seed={seed} p={p}"
            );
        }
    }
}

fn category_peak(stats: &mpsim::RunStats, cat: &str) -> u64 {
    stats
        .ranks
        .iter()
        .map(|r| {
            r.mem_categories
                .iter()
                .find(|(c, _)| *c == cat)
                .map(|(_, u)| u.peak)
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

#[test]
fn ooc_chunk_buffers_are_n_independent() {
    // The chunk-buffer ledger must depend on the chunk size only — the
    // whole point of streaming: growing the dataset 4x leaves the
    // O(chunk) buffer budget untouched.
    let chunk = 64;
    let small = induce_ooc(
        &quest(500, ClassFunc::F2, 21),
        &ParConfig::new(2),
        &ooc_opts(chunk, "buf-small"),
    );
    let large = induce_ooc(
        &quest(2_000, ClassFunc::F2, 21),
        &ParConfig::new(2),
        &ooc_opts(chunk, "buf-large"),
    );
    let bs = category_peak(&small.stats, OOC_BUF_MEM);
    let bl = category_peak(&large.stats, OOC_BUF_MEM);
    assert!(bs > 0, "chunk buffers must be accounted");
    assert_eq!(bs, bl, "chunk-buffer budget grew with N: {bs} → {bl}");
}

#[test]
fn ooc_resident_peak_beats_in_core() {
    // In-core holds all 7 attribute lists resident (O(N/p) each); the OOC
    // run holds one attribute during presort plus O(chunk) buffers, so its
    // per-rank peak must come in well below at identical (N, p).
    let d = quest(8_000, ClassFunc::F2, 22);
    let p = 2;
    let in_core = induce(&d, &ParConfig::new(p));
    let ooc = induce_ooc(&d, &ParConfig::new(p), &ooc_opts(128, "peak"));
    let mi = in_core.stats.peak_mem_per_proc();
    let mo = ooc.stats.peak_mem_per_proc();
    assert!(
        (mo as f64) < 0.6 * mi as f64,
        "ooc peak {mo} not clearly below in-core {mi}"
    );
    // Attribute-list category: 7 resident lists in-core vs one presort
    // attribute at a time out-of-core.
    let ai = category_peak(&in_core.stats, scalparc::dist::ATTR_MEM);
    let ao = category_peak(&ooc.stats, scalparc::dist::ATTR_MEM);
    assert!(
        (ao as f64) < 0.3 * ai as f64,
        "ooc attr-lists {ao} vs in-core {ai}"
    );
}

#[test]
fn ooc_list_residency_scales_with_chunk_not_n() {
    // Fixing N and shrinking the chunk must shrink the buffer ledger
    // proportionally (the budget is a linear function of chunk records).
    let d = quest(1_500, ClassFunc::F2, 23);
    let big = induce_ooc(&d, &ParConfig::new(2), &ooc_opts(512, "c-big"));
    let small = induce_ooc(&d, &ParConfig::new(2), &ooc_opts(64, "c-small"));
    let bb = category_peak(&big.stats, OOC_BUF_MEM);
    let bs = category_peak(&small.stats, OOC_BUF_MEM);
    assert_eq!(
        bb / bs,
        8,
        "buffer budget must scale linearly: {bb} vs {bs}"
    );
    assert_eq!(big.tree, small.tree, "chunk size must not affect the tree");
}

#[test]
fn packed_entry_is_ten_bytes_everywhere() {
    // The packed layout contract the cost ledgers rely on.
    assert_eq!(PACKED_ENTRY_BYTES, 10);
    assert_eq!(std::mem::size_of::<ContEntry>(), PACKED_ENTRY_BYTES);
    assert_eq!(std::mem::size_of::<CatEntry>(), PACKED_ENTRY_BYTES);
    assert_eq!(
        <ContEntry as diskio::Record>::SIZE,
        PACKED_ENTRY_BYTES,
        "disk encoding must equal the in-memory packed size"
    );
}

fn cont_list(values: Vec<(f32, u32, u8)>) -> AttrList {
    AttrList::Continuous(
        values
            .into_iter()
            .enumerate()
            .map(|(i, (value, rid, class))| ContEntry {
                value,
                rid: rid ^ i as u32, // mostly-unique rids, determinism irrelevant
                class: class as u16 % 4,
            })
            .collect(),
    )
}

fn cat_list(values: Vec<(u32, u32, u8)>, card: u32) -> AttrList {
    AttrList::Categorical(
        values
            .into_iter()
            .map(|(value, rid, class)| CatEntry {
                value: value % card,
                rid,
                class: class as u16 % 4,
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn scatter_split_by_children_matches_reference(
        entries in prop::collection::vec((-1.0e6f32..1.0e6, 0u32..1_000_000, 0u8..4), 0..300),
        arity in 1usize..6,
        seed in 0u64..=u64::MAX,
    ) {
        let n = entries.len();
        let list = cont_list(entries);
        // Arbitrary-but-valid verdict per record.
        let children: Vec<u8> = (0..n)
            .map(|i| ((seed >> (i % 57)) as usize % arity) as u8)
            .collect();
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        let fast = split_by_children(list.clone(), arity, &children, &mut c1);
        let refr = split_by_children_ref(list, arity, &children, &mut c2);
        prop_assert_eq!(fast, refr);
    }

    #[test]
    fn scatter_split_directly_continuous_matches_reference(
        entries in prop::collection::vec((-1.0e6f32..1.0e6, 0u32..1_000_000, 0u8..4), 0..300),
        threshold in -1.0e6f32..1.0e6,
    ) {
        let list = cont_list(entries);
        let test = SplitTest::Continuous { attr: 0, threshold };
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        let fast = split_directly(list.clone(), &test, 2, &mut c1);
        let refr = split_directly_ref(list, &test, 2, &mut c2);
        prop_assert_eq!(fast, refr);
    }

    #[test]
    fn scatter_split_directly_categorical_matches_reference(
        entries in prop::collection::vec((0u32..64, 0u32..1_000_000, 0u8..4), 0..300),
        card in 1u32..6,
        subset in any::<bool>(),
        mask in 0u64..=u64::MAX,
    ) {
        let list = cat_list(entries, card);
        let (test, arity) = if subset {
            (SplitTest::CategoricalSubset { attr: 0, left_mask: mask }, 2)
        } else {
            (SplitTest::Categorical { attr: 0 }, card as usize)
        };
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        let fast = split_directly(list.clone(), &test, arity, &mut c1);
        let refr = split_directly_ref(list, &test, arity, &mut c2);
        prop_assert_eq!(fast, refr);
    }
}
