//! Scalability invariants from the paper's analysis (§3), asserted on
//! measured statistics of simulated runs:
//!
//! * ScalParC memory per processor is O(N/p): doubling p ~halves the peak;
//! * ScalParC per-processor communication volume is O(N/p);
//! * parallel SPRINT's are O(N): they floor out as p grows;
//! * the distributed node table accounts for ~N/p slots per rank;
//! * simulated runtime improves with p once N is large enough, and larger
//!   N gives better relative speedups (paper §5 trends).

use datagen::{generate, GenConfig};
use dtree::Dataset;
use mpsim::{CostModel, TimingMode};
use scalparc::{induce, ParConfig};

fn data(n: usize) -> Dataset {
    generate(&GenConfig::paper(n, 5))
}

fn run(data: &Dataset, p: usize) -> scalparc::ParResult {
    induce(data, &ParConfig::new(p))
}

#[test]
fn memory_per_proc_halves_when_p_doubles() {
    let d = data(8_000);
    let peaks: Vec<u64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&p| run(&d, p).stats.peak_mem_per_proc())
        .collect();
    for w in peaks.windows(2) {
        let factor = w[0] as f64 / w[1] as f64;
        // The paper reports ~1.94 at small p; collective buffers erode the
        // ideal 2.0 a little.
        assert!(
            factor > 1.6,
            "memory halving factor {factor:.2} too weak: {peaks:?}"
        );
    }
}

#[test]
fn comm_volume_per_proc_shrinks_with_p() {
    let d = data(8_000);
    let v4 = run(&d, 4).stats.max_comm_volume_per_proc();
    let v16 = run(&d, 16).stats.max_comm_volume_per_proc();
    assert!(
        (v16 as f64) < 0.5 * v4 as f64,
        "volume p=4 {v4} → p=16 {v16}"
    );
}

#[test]
fn comm_volume_scales_linearly_in_n() {
    // Total communication per level is O(N) (paper's runtime-scalability
    // requirement): fixing p and doubling N should ~double total bytes.
    let p = 4;
    let b1 = run(&data(4_000), p).stats.total_bytes_sent();
    let b2 = run(&data(8_000), p).stats.total_bytes_sent();
    let ratio = b2 as f64 / b1 as f64;
    assert!(
        (1.4..3.0).contains(&ratio),
        "total bytes N→2N ratio {ratio:.2}"
    );
}

#[test]
fn node_table_is_block_partitioned() {
    let d = data(4_096);
    let r = run(&d, 8);
    for rank in &r.stats.ranks {
        let table = rank
            .mem_categories
            .iter()
            .find(|(c, _)| *c == dhash::TABLE_MEM)
            .map(|(_, u)| u.peak)
            .unwrap_or(0);
        // 4096 keys over 8 ranks = 512 slots of Option<u8> (2 bytes).
        assert_eq!(table, 1024, "rank table bytes {table}");
    }
}

#[test]
fn attr_lists_shrink_per_proc() {
    let d = data(8_000);
    let peak_at = |p: usize| {
        run(&d, p)
            .stats
            .ranks
            .iter()
            .map(|r| {
                r.mem_categories
                    .iter()
                    .find(|(c, _)| *c == scalparc::dist::ATTR_MEM)
                    .map(|(_, u)| u.peak)
                    .unwrap_or(0)
            })
            .max()
            .unwrap()
    };
    let a2 = peak_at(2);
    let a8 = peak_at(8);
    assert!(
        (a8 as f64) < 0.35 * a2 as f64,
        "attr lists p=2 {a2} → p=8 {a8}"
    );
}

#[test]
fn simulated_runtime_speeds_up_and_prefers_large_n() {
    // Use the analytic communication model with measured compute; compare
    // relative speedups for a small and a larger N.
    let run_t = |n: usize, p: usize| {
        let d = data(n);
        let cfg = ParConfig {
            procs: p,
            cost: CostModel::t3d_scaled(64.0),
            timing: TimingMode::Measured,
            trace: None,
            induce: Default::default(),
        };
        // Noise-filtered measurement (min-replay over 3 runs) keeps this
        // robust even when the host is loaded.
        scalparc::induce_measured(&d, &cfg, 3).stats.time_s()
    };
    let small_speedup = run_t(10_000, 1) / run_t(10_000, 8);
    let large_speedup = run_t(80_000, 1) / run_t(80_000, 8);
    assert!(
        large_speedup > 1.5,
        "large-N speedup at p=8 only {large_speedup:.2}"
    );
    assert!(
        large_speedup > small_speedup * 0.8,
        "relative speedup should not degrade with N: small {small_speedup:.2}, large {large_speedup:.2}"
    );
}

#[test]
fn levels_and_tree_shape_independent_of_p() {
    let d = data(3_000);
    let r1 = run(&d, 1);
    let r8 = run(&d, 8);
    assert_eq!(r1.levels, r8.levels);
    assert_eq!(r1.max_active_nodes, r8.max_active_nodes);
    assert_eq!(r1.tree, r8.tree);
}
