//! Property-based tests over the core building blocks, run against serial
//! reference implementations:
//!
//! * the distributed hash table behaves like a `HashMap` under arbitrary
//!   batched updates and enquiries, blocked or not;
//! * parallel sample sort equals the serial sort (multiset, order, balance);
//! * the incremental split-point scan equals the brute-force search, whole
//!   or resumed at an arbitrary processor boundary;
//! * list splitting is a stable partition;
//! * the prefix-scan collective equals a serial prefix fold.

use std::collections::HashMap;

use dhash::DistTable;
use dtree::gini::{brute_force_best_split, ContinuousScan};
use mpsim::run_simple;
use proptest::prelude::*;

fn cases(n: u32) -> ProptestConfig {
    ProptestConfig { cases: n }
}

proptest! {
    #![proptest_config(cases(24))]

    #[test]
    fn dist_table_matches_hashmap(
        p in 1usize..6,
        n in 1u64..200,
        ops in prop::collection::vec((0u64..200, 0u8..8), 0..120),
        blocked in any::<bool>(),
        round in 1usize..40,
    ) {
        let ops: Vec<(u64, u8)> = ops.into_iter().filter(|(k, _)| *k < n).collect();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for &(k, v) in &ops {
            reference.insert(k, v);
        }
        let ops_ref = &ops;
        let outs = run_simple(p, move |comm| {
            let mut table = DistTable::<u8>::new(comm, n);
            // Deal the operations round-robin to ranks; within a rank order
            // is preserved, and the last global write must win because each
            // key's updates all originate from the same rank here.
            let mine: Vec<(u64, u8)> = ops_ref
                .iter()
                .enumerate()
                .filter(|(i, _)| i % comm.size() == comm.rank())
                .map(|(_, kv)| *kv)
                .collect();
            // Keys dealt round-robin can interleave across ranks; to keep
            // the last-writer deterministic, only keep each key's updates on
            // one rank (key % p).
            let mine: Vec<(u64, u8)> = mine
                .into_iter()
                .filter(|(k, _)| (*k as usize) % comm.size() == comm.rank())
                .collect();
            if blocked {
                table.update_blocked(comm, &mine, round);
            } else {
                table.update(comm, &mine);
            }
            let keys: Vec<u64> = (0..n).collect();
            table.inquire(comm, &keys)
        });
        // Reference restricted to the same per-rank filtering: a key k kept
        // only if some op with that key existed (owner rank keeps order).
        let mut expect: HashMap<u64, u8> = HashMap::new();
        for (i, &(k, v)) in ops.iter().enumerate() {
            if i % p == (k as usize) % p {
                expect.insert(k, v);
            }
        }
        for out in outs {
            for (k, got) in out.into_iter().enumerate() {
                prop_assert_eq!(got, expect.get(&(k as u64)).copied());
            }
        }
    }

    #[test]
    fn sample_sort_equals_serial_sort(
        p in 1usize..6,
        chunks in prop::collection::vec(prop::collection::vec(0u32..1000, 0..80), 1..6),
    ) {
        let chunks_ref = &chunks;
        let outs = run_simple(p, move |comm| {
            let local = chunks_ref.get(comm.rank()).cloned().unwrap_or_default();
            sortp::sample_sort(comm, local, |a, b| a.cmp(b))
        });
        // Only the first p chunks are handed to ranks.
        let mut serial: Vec<u32> = chunks.iter().take(p).flatten().copied().collect();
        serial.sort_unstable();
        let parallel: Vec<u32> = outs.iter().flatten().copied().collect();
        prop_assert_eq!(&parallel, &serial);
        // Balance: block sizes are ceil(N/p).
        let total = serial.len();
        let block = total.div_ceil(p).max(1);
        for (r, s) in outs.iter().enumerate() {
            let want = ((r + 1) * block).min(total).saturating_sub((r * block).min(total));
            prop_assert_eq!(s.len(), want);
        }
    }

    #[test]
    fn scan_equals_brute_force(
        pairs in prop::collection::vec((0u32..60, 0u8..3), 2..200),
    ) {
        let mut sorted: Vec<(f32, u8)> = pairs
            .iter()
            .map(|&(v, c)| (v as f32 / 4.0, c))
            .collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut total = vec![0u64; 3];
        for &(_, c) in &sorted {
            total[c as usize] += 1;
        }
        let mut scan = ContinuousScan::fresh(total);
        for &(v, c) in &sorted {
            scan.push(v, c);
        }
        let brute = brute_force_best_split(&sorted, 3);
        match (scan.best(), brute) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.threshold, b.threshold);
                prop_assert!((a.gini - b.gini).abs() < 1e-12);
            }
            (a, b) => prop_assert!(false, "scan {a:?} vs brute {b:?}"),
        }
    }

    #[test]
    fn scan_resumable_at_any_boundary(
        pairs in prop::collection::vec((0u32..40, 0u8..2), 2..100),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut sorted: Vec<(f32, u8)> = pairs.iter().map(|&(v, c)| (v as f32, c)).collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut total = vec![0u64; 2];
        for &(_, c) in &sorted {
            total[c as usize] += 1;
        }
        let cut = ((sorted.len() as f64) * cut_frac) as usize;

        let mut whole = ContinuousScan::fresh(total.clone());
        for &(v, c) in &sorted {
            whole.push(v, c);
        }

        let mut below = vec![0u64; 2];
        for &(_, c) in &sorted[..cut] {
            below[c as usize] += 1;
        }
        let prev = if cut == 0 { None } else { Some(sorted[cut - 1].0) };
        let mut first = ContinuousScan::fresh(total.clone());
        for &(v, c) in &sorted[..cut] {
            first.push(v, c);
        }
        let mut second = ContinuousScan::new(total, below, prev);
        for &(v, c) in &sorted[cut..] {
            second.push(v, c);
        }
        let halves = [first.best(), second.best()]
            .into_iter()
            .flatten()
            .min_by(|a, b| a.gini.total_cmp(&b.gini).then(a.threshold.total_cmp(&b.threshold)));
        match (whole.best(), halves) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.threshold, b.threshold);
                prop_assert!((a.gini - b.gini).abs() < 1e-12);
            }
            (a, b) => prop_assert!(false, "whole {a:?} vs halves {b:?}"),
        }
    }

    #[test]
    fn prefix_scan_collective_matches_serial_fold(
        p in 1usize..7,
        values in prop::collection::vec(0u64..1000, 7),
    ) {
        let v = &values;
        let outs = run_simple(p, move |comm| {
            comm.scan_exclusive(v[comm.rank() % 7], 0u64, |a, b| *a += *b)
        });
        let mut acc = 0u64;
        for (r, out) in outs.into_iter().enumerate() {
            prop_assert_eq!(out, acc);
            acc += values[r % 7];
        }
    }

    #[test]
    fn flat_alltoallv_equals_nested(
        p in 1usize..6,
        counts in prop::collection::vec(0usize..20, 36),
    ) {
        let c = &counts;
        let outs = run_simple(p, move |comm| {
            let p = comm.size();
            let me = comm.rank();
            let bufs: Vec<Vec<(usize, usize, usize)>> = (0..p)
                .map(|d| {
                    let k = c[(me * 6 + d) % 36];
                    (0..k).map(|i| (me, d, i)).collect()
                })
                .collect();
            let cnts: Vec<usize> = bufs.iter().map(Vec::len).collect();
            let flat_send: Vec<(usize, usize, usize)> =
                bufs.iter().flatten().copied().collect();
            let nested = comm.alltoallv(bufs);
            let (flat, flat_counts) = comm.alltoallv_flat(flat_send, &cnts);
            (nested, flat, flat_counts)
        });
        for (nested, flat, flat_counts) in outs {
            // Element-for-element: the flat receive buffer is the nested
            // per-source buffers concatenated in source-rank order.
            let want: Vec<(usize, usize, usize)> =
                nested.iter().flatten().copied().collect();
            prop_assert_eq!(flat, want);
            let want_counts: Vec<usize> = nested.iter().map(Vec::len).collect();
            prop_assert_eq!(flat_counts, want_counts);
        }
    }

    #[test]
    fn flat_allgatherv_equals_nested(
        p in 1usize..6,
        lens in prop::collection::vec(0usize..25, 6),
    ) {
        let l = &lens;
        let outs = run_simple(p, move |comm| {
            let mine: Vec<u32> = (0..l[comm.rank() % 6] as u32)
                .map(|i| comm.rank() as u32 * 100 + i)
                .collect();
            let nested = comm.allgatherv(mine.clone());
            let (flat, flat_counts) = comm.allgatherv_flat(mine);
            (nested, flat, flat_counts)
        });
        for (nested, flat, flat_counts) in outs {
            prop_assert_eq!(&flat, &nested);
            prop_assert_eq!(flat_counts.iter().sum::<usize>(), nested.len());
        }
    }

    #[test]
    fn alltoallv_is_a_permutation(
        p in 1usize..6,
        counts in prop::collection::vec(0usize..20, 36),
    ) {
        let c = &counts;
        let outs = run_simple(p, move |comm| {
            let bufs: Vec<Vec<(usize, usize, usize)>> = (0..comm.size())
                .map(|d| {
                    let k = c[(comm.rank() * 6 + d) % 36];
                    (0..k).map(|i| (comm.rank(), d, i)).collect()
                })
                .collect();
            comm.alltoallv(bufs)
        });
        for (me, out) in outs.iter().enumerate() {
            for (src, buf) in out.iter().enumerate() {
                let want = counts[(src * 6 + me) % 36];
                prop_assert_eq!(buf.len(), want);
                for (i, &(s, d, j)) in buf.iter().enumerate() {
                    prop_assert_eq!((s, d, j), (src, me, i));
                }
            }
        }
    }
}
