//! Workspace-spanning equivalence tests: every classifier in this
//! reproduction — CART-style (re-sort per node), serial SPRINT (presort +
//! hash-table splitting), parallel SPRINT (replicated table), and ScalParC
//! (distributed node table) — must induce the *identical* decision tree on
//! identical data, for every processor count.
//!
//! This is the strongest end-to-end correctness statement available: it
//! pins the distributed split search, the prefix-scan boundary handling,
//! the node-table round trips, and the canonical tie-breaking all at once.

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::cart::{self, CartConfig};
use dtree::sprint::{self, SprintConfig};
use dtree::{Dataset, StopRules};
use scalparc::{induce, ParConfig};

fn quest(n: usize, func: ClassFunc, noise: f64, seed: u64, profile: Profile) -> Dataset {
    generate(&GenConfig {
        n,
        func,
        noise,
        seed,
        profile,
    })
}

#[test]
fn all_classifiers_agree_on_every_quest_function() {
    for (i, func) in ClassFunc::ALL.into_iter().enumerate() {
        let data = quest(400, func, 0.0, 100 + i as u64, Profile::Paper7);
        let serial = sprint::induce(&data, &SprintConfig::default());
        serial.validate();

        let cart = cart::induce(&data, &CartConfig::default());
        assert_eq!(cart, serial, "{func:?}: CART disagrees");

        for p in [1usize, 3, 4, 8] {
            let scal = induce(&data, &ParConfig::new(p));
            assert_eq!(scal.tree, serial, "{func:?}: ScalParC p={p} disagrees");
        }
        let spr = induce(&data, &ParConfig::new(4).sprint_baseline());
        assert_eq!(spr.tree, serial, "{func:?}: parallel SPRINT disagrees");
    }
}

#[test]
fn agreement_holds_with_label_noise() {
    // Noise produces deep, bushy trees with many tiny nodes — the stress
    // case for per-level batching and empty segments.
    let data = quest(600, ClassFunc::F2, 0.15, 42, Profile::Paper7);
    let serial = sprint::induce(&data, &SprintConfig::default());
    assert!(serial.nodes.len() > 50, "noise should force a big tree");
    for p in [2usize, 5, 16] {
        let scal = induce(&data, &ParConfig::new(p));
        assert_eq!(scal.tree, serial, "p={p}");
    }
}

#[test]
fn agreement_holds_on_full9_schema() {
    // Three categorical attributes including the 20-way `car`.
    let data = quest(500, ClassFunc::F3, 0.0, 7, Profile::Full9);
    let serial = sprint::induce(&data, &SprintConfig::default());
    for p in [2usize, 6] {
        let scal = induce(&data, &ParConfig::new(p));
        assert_eq!(scal.tree, serial, "p={p}");
    }
}

#[test]
fn agreement_holds_under_every_stop_rule() {
    let data = quest(500, ClassFunc::F5, 0.05, 9, Profile::Paper7);
    for stop in [
        StopRules {
            max_depth: 3,
            ..StopRules::default()
        },
        StopRules {
            min_records: 50,
            ..StopRules::default()
        },
        StopRules {
            min_gain: 0.01,
            ..StopRules::default()
        },
    ] {
        let serial = sprint::induce(
            &data,
            &SprintConfig {
                stop,
                ..SprintConfig::default()
            },
        );
        let mut cfg = ParConfig::new(4);
        cfg.induce.stop = stop;
        let scal = induce(&data, &cfg);
        assert_eq!(scal.tree, serial, "stop={stop:?}");
        let cart = cart::induce(
            &data,
            &CartConfig {
                stop,
                ..CartConfig::default()
            },
        );
        assert_eq!(cart, serial, "stop={stop:?} (cart)");
    }
}

#[test]
fn agreement_with_odd_processor_counts_and_tiny_data() {
    // N not divisible by p; p > N; single-record fragments.
    for n in [1usize, 2, 7, 13] {
        let data = quest(n, ClassFunc::F1, 0.0, 11, Profile::Paper7);
        let serial = sprint::induce(&data, &SprintConfig::default());
        for p in [2usize, 3, 5, 16] {
            let scal = induce(&data, &ParConfig::new(p));
            assert_eq!(scal.tree, serial, "n={n} p={p}");
        }
    }
}

#[test]
fn agreement_holds_under_entropy_criterion() {
    use dtree::{Criterion, SplitOptions};
    let opts = SplitOptions {
        criterion: Criterion::Entropy,
        ..SplitOptions::default()
    };
    let data = quest(500, ClassFunc::F5, 0.05, 44, Profile::Paper7);
    let serial = sprint::induce(
        &data,
        &SprintConfig {
            split: opts,
            ..SprintConfig::default()
        },
    );
    serial.validate();
    let cart = cart::induce(
        &data,
        &CartConfig {
            split: opts,
            ..CartConfig::default()
        },
    );
    assert_eq!(cart, serial, "CART disagrees under entropy");
    for p in [2usize, 7] {
        let mut cfg = ParConfig::new(p);
        cfg.induce.split = opts;
        let scal = induce(&data, &cfg);
        assert_eq!(scal.tree, serial, "p={p}");
    }
}

#[test]
fn predictions_and_accuracy_match_across_implementations() {
    let train = quest(800, ClassFunc::F6, 0.05, 21, Profile::Paper7);
    let test = quest(400, ClassFunc::F6, 0.0, 22, Profile::Paper7);
    let serial = sprint::induce(&train, &SprintConfig::default());
    let scal = induce(&train, &ParConfig::new(8)).tree;
    for rid in 0..test.len() {
        assert_eq!(serial.predict(&test, rid), scal.predict(&test, rid));
    }
    assert_eq!(serial.accuracy(&test), scal.accuracy(&test));
}

#[test]
fn agreement_over_full_config_grid() {
    // Every cell of p ∈ {1,2,4,8} × blocked_updates × batched_enquiry must
    // induce the identical tree: the four combinations exercise disjoint
    // node-table code paths (one-shot vs round-limited updates, per-attribute
    // vs level-batched enquiries) over the flat-buffer collectives.
    let data = quest(450, ClassFunc::F7, 0.05, 77, Profile::Paper7);
    let serial = sprint::induce(&data, &SprintConfig::default());
    serial.validate();
    for p in [1usize, 2, 4, 8] {
        for blocked in [false, true] {
            for batched in [false, true] {
                let mut cfg = ParConfig::new(p);
                cfg.induce.blocked_updates = blocked;
                cfg.induce.batched_enquiry = batched;
                let scal = induce(&data, &cfg);
                assert_eq!(
                    scal.tree, serial,
                    "p={p} blocked_updates={blocked} batched_enquiry={batched}"
                );
            }
        }
    }
}

#[test]
fn agreement_holds_with_binary_subset_splits() {
    use dtree::{CatSplitMode, SplitOptions};
    let opts = SplitOptions {
        cat_mode: CatSplitMode::BinarySubset,
        ..SplitOptions::default()
    };
    // F3 (age × elevel) drives categorical splits; Full9 adds car/zipcode.
    for profile in [Profile::Paper7, Profile::Full9] {
        let data = quest(500, ClassFunc::F3, 0.0, 33, profile);
        let serial = sprint::induce(
            &data,
            &SprintConfig {
                split: opts,
                ..SprintConfig::default()
            },
        );
        serial.validate();
        let cart = cart::induce(
            &data,
            &CartConfig {
                split: opts,
                ..CartConfig::default()
            },
        );
        assert_eq!(cart, serial, "{profile:?}: CART disagrees");
        for p in [2usize, 5] {
            let mut cfg = ParConfig::new(p);
            cfg.induce.split = opts;
            let scal = induce(&data, &cfg);
            assert_eq!(scal.tree, serial, "{profile:?} p={p}");
        }
        // Subset trees are binary everywhere.
        assert!(serial
            .nodes
            .iter()
            .all(|n| n.children.is_empty() || n.children.len() == 2));
        assert!(serial.accuracy(&data) > 0.99);
    }
}
