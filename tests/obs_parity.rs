//! Accounting-parity properties for the observability recorder.
//!
//! The recorder's contract is *exactness*, not approximation: for any traced
//! run, (a) the p×p communication matrix's per-rank row sums must equal the
//! simulator's own `bytes_sent` / `bytes_recv` counters, and (b) the
//! exclusive per-phase rollups plus the `(untracked)` residue must sum to
//! the rank's `compute_ns` / `comm_ns` / byte totals field for field.
//!
//! These are checked over a randomized grid of machine sizes × collective
//! mixes × span nestings, including operations issued outside any span
//! (which must land in the untracked residue, never vanish).

use mpsim::obs::{self, CommMatrix};
use mpsim::{run, MachineCfg};
use proptest::prelude::*;

/// One step of the SPMD program, drawn as `(op, k, wrap)`:
/// `op` selects the collective, `k` scales the payload, and `wrap` is
/// 0 = bare (untracked), 1 = one span, 2 = two nested spans.
type Step = (u8, usize, u8);

/// Issue one collective; every rank calls this with the same step, as the
/// simulator's correctness contract requires.
fn execute(comm: &mut mpsim::Comm, op: u8, k: usize) {
    let p = comm.size();
    let me = comm.rank() as u64;
    match op {
        0 => {
            comm.allreduce_sized(me, 8 * k as u64, |a, b| *a = a.wrapping_add(*b));
        }
        1 => {
            let counts = vec![k; p];
            let send: Vec<u64> = (0..(p * k) as u64).map(|i| i + me).collect();
            comm.alltoallv_flat(send, &counts);
        }
        2 => {
            comm.allgatherv(vec![me; k]);
        }
        3 => {
            comm.gather(0, me * 3 + k as u64);
        }
        4 => {
            comm.reduce_sized(0, me, 8 * k as u64, |a, b| *a = (*a).max(*b));
        }
        5 => {
            comm.barrier();
        }
        _ => {
            // Point-to-point ring; a non-collective pattern so the matrix
            // gets genuinely off-diagonal per-pair entries.
            if p > 1 {
                let rank = comm.rank();
                let data: Vec<u64> = (0..k as u64).collect();
                comm.send_vec((rank + 1) % p, data);
                let got: Vec<u64> = comm.recv_vec((rank + p - 1) % p);
                assert_eq!(got.len(), k);
            }
        }
    }
}

/// The parity assertions shared by every case: rollup sums and comm-matrix
/// row sums must reproduce the simulator's counters exactly.
fn assert_parity(stats: &mpsim::RunStats) {
    let traces = stats.traces().expect("run was traced");
    let matrix = CommMatrix::from_traces(&traces);
    for (rank, (trace, rs)) in traces.iter().zip(&stats.ranks).enumerate() {
        assert_eq!(trace.dropped_spans, 0, "rank {rank} dropped spans");
        assert_eq!(trace.unclosed_spans, 0, "rank {rank} unclosed spans");
        let sum = obs::rollup_rank(trace, &rs.totals()).sum();
        assert_eq!(sum.compute_ns, rs.compute_ns, "rank {rank} compute_ns");
        assert_eq!(sum.comm_ns, rs.comm_ns, "rank {rank} comm_ns");
        assert_eq!(sum.bytes_sent, rs.bytes_sent, "rank {rank} bytes_sent");
        assert_eq!(sum.bytes_recv, rs.bytes_recv, "rank {rank} bytes_recv");
        assert_eq!(
            matrix.sent_total(rank),
            rs.bytes_sent,
            "rank {rank} matrix sent row"
        );
        assert_eq!(
            matrix.recv_total(rank),
            rs.bytes_recv,
            "rank {rank} matrix recv row"
        );
    }
}

fn cases(n: u32) -> ProptestConfig {
    ProptestConfig { cases: n }
}

proptest! {
    #![proptest_config(cases(24))]

    #[test]
    fn rollups_and_matrix_reproduce_rank_counters(
        p in 1usize..9,
        steps in prop::collection::vec((0u8..7, 1usize..24, 0u8..3), 1..24),
    ) {
        let steps_ref: &Vec<Step> = &steps;
        let result = run(&MachineCfg::new(p).traced(), move |comm| {
            for (i, &(op, k, wrap)) in steps_ref.iter().enumerate() {
                // Rotate span names so the rollup sees several phases.
                let name = ["alpha", "beta", "gamma"][i % 3];
                match wrap {
                    0 => execute(comm, op, k),
                    1 => {
                        comm.phase_begin(name, (i % 4) as u32);
                        execute(comm, op, k);
                        comm.phase_end();
                    }
                    _ => {
                        comm.phase_begin(name, (i % 4) as u32);
                        comm.phase_begin("inner", (i % 4) as u32);
                        execute(comm, op, k);
                        comm.phase_end();
                        execute(comm, op, k);
                        comm.phase_end();
                    }
                }
            }
        });
        assert_parity(&result.stats);
    }

    /// Operations issued entirely outside spans must be attributed to the
    /// `(untracked)` residue — bytes never vanish from the rollup.
    #[test]
    fn bare_collectives_land_in_untracked_residue(
        p in 2usize..7,
        steps in prop::collection::vec((0u8..7, 1usize..24), 1..12),
    ) {
        let steps_ref: &Vec<(u8, usize)> = &steps;
        let result = run(&MachineCfg::new(p).traced(), move |comm| {
            for &(op, k) in steps_ref.iter() {
                execute(comm, op, k);
            }
        });
        assert_parity(&result.stats);
        let traces = result.stats.traces().unwrap();
        for (trace, rs) in traces.iter().zip(&result.stats.ranks) {
            let rollup = obs::rollup_rank(trace, &rs.totals());
            let untracked = rollup
                .phases
                .iter()
                .find(|ph| ph.name == obs::metrics::UNTRACKED)
                .expect("residue phase present");
            assert_eq!(untracked.totals.bytes_sent, rs.bytes_sent);
            assert_eq!(untracked.totals.bytes_recv, rs.bytes_recv);
            assert_eq!(untracked.totals.comm_ns, rs.comm_ns);
        }
    }
}
