//! Streaming-induction equivalence: the cross-crate guarantees of the
//! stream subsystem.
//!
//! * **Pipeline determinism** — replaying the same drift stream and seeds
//!   yields the byte-identical generation sequence (ids, triggers,
//!   windows, `model_io` tree text, confusion matrices) and the identical
//!   prequential block log at every rank count.
//! * **Hot-swap equivalence** — while generations are published through a
//!   [`serve::ModelSlot`] under concurrent scoring traffic, every request
//!   is answered by *exactly one* committed generation: no drops, no
//!   torn batches, and the predictions equal that generation's batch
//!   kernel run offline over the same records.
//! * **Kill-and-resume suffix identity** — a live run killed mid-stream
//!   and resumed from its generation store (`LiveConfig::resume`) commits
//!   exactly the suffix the uninterrupted in-machine pipeline would have:
//!   the combined two-life commit sequence equals the oracle's, byte for
//!   byte — including when the newest store file was torn by the crash.
//! * **Accumulator invariance** (proptest) — folding a stream into the
//!   incremental accumulators under *any* blocking and *any* block
//!   arrival order equals the single-shot batch statistics, for both the
//!   model-free window sketch and the per-leaf serving statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use datagen::{ClassFunc, DriftKind, GenConfig};
use dtree::flat::FlatTree;
use dtree::model_io;
use proptest::prelude::*;
use scalparc::stream::accum::{LeafStats, StreamAccum};
use scalparc::stream::{run_stream, BlockSource, StreamConfig, StreamReport};
use scalparc::ParConfig;
use serve::{ModelSlot, Request, ResponseStatus, ServeConfig, ServeModel, Server};
use stream::{quest_sketch, run_live, DamageKind, DriftSource, Health, LiveConfig, StorageDamage};

fn drift_source(n: usize, seed: u64) -> DriftSource {
    DriftSource::new(
        GenConfig::paper(n, seed),
        DriftKind::Abrupt {
            at: n / 2,
            to: ClassFunc::F1,
        },
    )
}

fn stream_cfg(source: &DriftSource) -> StreamConfig {
    StreamConfig {
        block_records: 100,
        window_records: 800,
        reeval_records: 400,
        drift_error: Some(0.15),
        min_epoch_records: 50,
        sketch: quest_sketch(&source.schema(), 16),
        keep_generations: None,
        induce: Default::default(),
    }
}

fn pipeline(source: &DriftSource, procs: usize) -> StreamReport {
    run_stream(source, &ParConfig::new(procs), &stream_cfg(source), None).report
}

#[test]
fn generation_sequence_is_byte_identical_across_p() {
    let source = drift_source(1_600, 11);
    let reference = pipeline(&source, 1);
    assert!(
        reference.commits.len() >= 3,
        "workload too small to exercise the pipeline"
    );
    for p in [2usize, 4, 8] {
        assert_eq!(
            pipeline(&source, p),
            reference,
            "stream pipeline diverged at p={p}"
        );
    }
}

/// Replay the committed generation sequence through a live [`ModelSlot`]
/// while a scoring loop hammers the server: every response must be `Ok`,
/// name a committed generation, and carry exactly the predictions that
/// generation's compiled tree produces offline.
#[test]
fn hot_swap_answers_every_request_from_exactly_one_committed_generation() {
    let source = drift_source(1_600, 11);
    let report = pipeline(&source, 4);
    let trees: Vec<(u64, FlatTree)> = report
        .commits
        .iter()
        .map(|c| {
            let tree = model_io::from_text(&c.tree_text).expect("committed tree decodes");
            (c.generation, FlatTree::compile(&tree))
        })
        .collect();
    assert!(trees.len() >= 3, "need several generations to swap through");

    let data = Arc::new(source.block(0, 1_024));
    let chunk = 128usize;
    // Offline oracle: per generation, the batch predictions for each chunk.
    let oracle: HashMap<u64, Vec<Vec<u8>>> = trees
        .iter()
        .map(|(g, flat)| {
            let mut per_chunk = Vec::new();
            let mut predictions = vec![0u8; data.len()];
            flat.predict_batch(&data, &mut predictions);
            for lo in (0..data.len()).step_by(chunk) {
                per_chunk.push(predictions[lo..(lo + chunk).min(data.len())].to_vec());
            }
            (*g, per_chunk)
        })
        .collect();

    let (first_gen, first_tree) = trees[0].clone();
    let slot = ModelSlot::new(first_gen, ServeModel::Tree(first_tree));
    let server = Server::start_slot(slot, ServeConfig::default());
    let done = AtomicBool::new(false);
    let swapped = std::thread::scope(|scope| {
        let publisher = scope.spawn(|| {
            for (g, flat) in &trees[1..] {
                std::thread::sleep(std::time::Duration::from_millis(2));
                server.publish(*g, ServeModel::Tree(flat.clone()));
            }
            done.store(true, Ordering::Release);
        });
        let mut observed = std::collections::HashSet::new();
        let mut idx = 0usize;
        let chunks = data.len().div_ceil(chunk);
        while !done.load(Ordering::Acquire) || observed.len() < 2 {
            let lo = (idx % chunks) * chunk;
            let hi = (lo + chunk).min(data.len());
            idx += 1;
            let resp = server
                .score_blocking(Request {
                    data: Arc::clone(&data),
                    lo,
                    hi,
                })
                .expect("hot swap must not reject requests");
            assert_eq!(resp.status, ResponseStatus::Ok, "hot swap dropped a batch");
            let per_chunk = oracle
                .get(&resp.generation)
                .expect("response named an uncommitted generation");
            assert_eq!(
                resp.predictions,
                per_chunk[lo / chunk],
                "batch at [{lo},{hi}) was torn across generations {}",
                resp.generation
            );
            observed.insert(resp.generation);
            if idx > 200_000 {
                break; // publisher wedged; let its join surface the panic
            }
        }
        publisher.join().expect("publisher thread");
        observed
    });
    let stats = server.shutdown();
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.timeouts, 0);
    assert!(
        swapped.len() >= 2,
        "scoring loop never observed a swap ({swapped:?})"
    );
    // The per-generation serve windows partition the request count.
    let windowed: u64 = stats.generations.iter().map(|w| w.requests).sum();
    assert_eq!(windowed, stats.requests);
}

/// Run the kill-and-resume scenario: life A consumes the stream's prefix
/// (the "process" dies at `cut`), optionally the newest committed store
/// file is damaged (a torn write at crash time), then life B resumes from
/// the store over the full stream. Asserts the combined commit sequence —
/// life A's intact prefix plus life B's suffix — is identical to the
/// uninterrupted in-machine oracle: ids, triggers, windows, tree bytes.
fn kill_resume_roundtrip(damage_newest: bool) {
    let n = 1_600usize;
    let cut = 1_200usize; // block-aligned kill point
    let source_full = drift_source(n, 11);
    let source_cut = DriftSource::new(
        GenConfig::paper(cut, 11),
        DriftKind::Abrupt {
            at: n / 2, // same absolute drift position as the full stream
            to: ClassFunc::F1,
        },
    );
    let cfg = stream_cfg(&source_full);
    let oracle = pipeline(&source_full, 4);

    let dir = std::env::temp_dir().join(format!(
        "scalparc-kill-resume-{}-{damage_newest}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let live_cfg = LiveConfig {
        store: Some(dir.clone()),
        ..LiveConfig::default()
    };
    let life_a = run_live(&source_cut, &cfg, &live_cfg);
    assert!(
        life_a.swaps.len() >= 2,
        "need at least two committed generations before the kill"
    );
    assert_eq!(life_a.health, Health::Healthy);

    let newest = life_a.swaps.last().unwrap().generation;
    let expect_resume = if damage_newest {
        assert!(
            StorageDamage {
                generation: newest,
                kind: DamageKind::TruncateTail,
            }
            .apply(&dir),
            "damaging GEN_{newest}"
        );
        newest - 1
    } else {
        newest
    };

    let life_b = run_live(
        &source_full,
        &cfg,
        &LiveConfig {
            resume: true,
            ..live_cfg
        },
    );
    assert_eq!(life_b.resumed_from, Some(expect_resume));
    assert_eq!(
        life_b.store_skipped_corrupt,
        u32::from(damage_newest),
        "exactly the torn file (if any) skipped"
    );
    assert_eq!(life_b.health, Health::Healthy);
    assert!(life_b.recovery_ns > 0, "resume stamps its time-to-recover");

    // Zero lost committed generations: the intact prefix plus the resumed
    // suffix reproduce the oracle exactly. A damaged newest generation is
    // re-induced deterministically, so it reappears in life B's commits.
    let combined: Vec<_> = life_a
        .swaps
        .iter()
        .filter(|s| s.generation <= expect_resume)
        .chain(life_b.swaps.iter())
        .collect();
    assert_eq!(combined.len(), oracle.commits.len());
    for (s, c) in combined.iter().zip(&oracle.commits) {
        assert_eq!(s.generation, c.generation);
        assert_eq!(s.trigger, c.trigger, "gen {}", s.generation);
        assert_eq!(
            (s.window_lo, s.window_hi),
            (c.window_lo, c.window_hi),
            "gen {}",
            s.generation
        );
        assert_eq!(s.tree_text, c.tree_text, "gen {} tree bytes", s.generation);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_resume_commits_the_identical_suffix() {
    kill_resume_roundtrip(false);
}

#[test]
fn resume_skips_a_torn_newest_generation_and_loses_nothing() {
    kill_resume_roundtrip(true);
}

/// A deterministic in-test shuffle (proptest drives the seed).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        items.swap(i, (seed >> 33) as usize % (i + 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn accumulators_are_blocking_and_arrival_order_invariant(
        seed in 0u64..(1u64 << 48),
        n in 60usize..400,
        raw_cuts in prop::collection::vec(0usize..400, 0..8),
        order_seed in 0u64..u64::MAX,
    ) {
        let source = drift_source(n.max(64), seed);
        let n = source.total();
        let schema = source.schema();
        let specs = quest_sketch(&schema, 8);
        let whole = source.block(0, n);

        // Arbitrary blocking of [0, n).
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % n).collect();
        cuts.extend([0, n]);
        cuts.sort_unstable();
        cuts.dedup();
        let mut blocks: Vec<dtree::Dataset> = cuts
            .windows(2)
            .filter(|w| w[1] > w[0])
            .map(|w| source.block(w[0], w[1]))
            .collect();
        shuffle(&mut blocks, order_seed);

        // Batch oracle: one update over the whole stream.
        let mut batch = StreamAccum::new(&schema, &specs);
        batch.update(&whole);
        let tree = FlatTree::compile(&dtree::sprint::induce(
            &whole,
            &dtree::sprint::SprintConfig::default(),
        ));
        let mut batch_leaves = LeafStats::new(&tree);
        let mut scratch = Vec::new();
        batch_leaves.update(&tree, &whole, &mut scratch);

        // Incremental: fold shuffled blocks one by one...
        let mut streamed = StreamAccum::new(&schema, &specs);
        let mut streamed_leaves = LeafStats::new(&tree);
        // ...and also into per-block accumulators merged pairwise, the
        // shape the allreduce operator sees.
        let mut merged = StreamAccum::new(&schema, &specs);
        let mut merged_leaves = LeafStats::new(&tree);
        for block in &blocks {
            streamed.update(block);
            streamed_leaves.update(&tree, block, &mut scratch);
            let mut one = StreamAccum::new(&schema, &specs);
            one.update(block);
            merged.merge(&one);
            let mut one_leaves = LeafStats::new(&tree);
            one_leaves.update(&tree, block, &mut scratch);
            merged_leaves.merge(&one_leaves);
        }

        prop_assert_eq!(&streamed, &batch);
        prop_assert_eq!(&merged, &batch);
        prop_assert_eq!(&streamed_leaves, &batch_leaves);
        prop_assert_eq!(&merged_leaves, &batch_leaves);
    }
}
