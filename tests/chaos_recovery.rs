//! Fault-injection and recovery invariants, end to end: a rank crash at
//! **any** tree level, followed by checkpoint restore and re-execution,
//! must change nothing observable about the model — the recovered tree is
//! byte-identical to the fault-free tree and classifies identically.
//! Message faults (drop/corrupt) are absorbed by detect-and-retransmit
//! with the same guarantee. The fault layer itself, when installed but
//! idle, charges byte-for-byte the costs of a build without it; and every
//! injected schedule replays deterministically: same seed, same plan →
//! same tree, same simulated clocks, same fault log.

use std::sync::Arc;

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::eval::confusion_matrix;
use dtree::{model_io, Dataset};
use mpsim::{CrashPoint, FaultKind, FaultPlan, StorageFaultKind};
use proptest::prelude::*;
use scalparc::checkpoint::{self, CheckpointCtx, RestoreVerdict};
use scalparc::{
    induce, induce_with_recovery, induce_with_recovery_policy, try_induce, ParConfig,
    RecoveryPolicy,
};

fn quest(n: usize, func: ClassFunc, seed: u64) -> Dataset {
    generate(&GenConfig {
        n,
        func,
        noise: 0.0,
        seed,
        profile: Profile::Paper7,
    })
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("scalparc-chaos-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The core recovery guarantee, exhaustively: crash at *every* level of
/// the tree, for every p in the grid, on two datasets — the recovered tree
/// and its confusion matrix must equal the uninterrupted run's.
#[test]
fn crash_at_every_level_recovers_identical_tree_and_confusion() {
    for (seed, func) in [(5u64, ClassFunc::F2), (9, ClassFunc::F6)] {
        let data = quest(260, func, seed);
        for p in [2usize, 4] {
            let cfg = ParConfig::new(p);
            let want = induce(&data, &cfg);
            let want_text = model_io::to_text(&want.tree);
            let want_conf = confusion_matrix(&want.tree, &data);
            assert!(want.levels >= 3, "workload too shallow to be interesting");
            for level in 0..want.levels {
                let dir = tmp_dir(&format!("grid-{seed}-{p}-{level}"));
                let plan =
                    FaultPlan::new().with_crash(level as usize % p, CrashPoint::Level(level));
                let rec = induce_with_recovery(&data, &cfg, Some(Arc::new(plan)), &dir);
                let _ = std::fs::remove_dir_all(&dir);
                assert_eq!(
                    model_io::to_text(&rec.result.tree),
                    want_text,
                    "seed={seed} p={p} crash at level {level}: tree differs"
                );
                assert_eq!(
                    confusion_matrix(&rec.result.tree, &data),
                    want_conf,
                    "seed={seed} p={p} crash at level {level}: confusion differs"
                );
                assert_eq!(rec.report.attempts, 2, "one crash, one retry");
                assert_eq!(rec.report.crashes.len(), 1);
                assert_eq!(rec.report.crashes[0].level, level);
                assert!(rec.report.reexecuted_levels >= 1);
                assert!(rec.report.wasted_time_ns > 0);
            }
        }
    }
}

/// A crash *before* the first level (during setup/presort, where no
/// checkpoint exists yet) falls back to a clean fresh start.
#[test]
fn crash_before_first_checkpoint_restarts_from_scratch() {
    let data = quest(300, ClassFunc::F2, 13);
    let cfg = ParConfig::new(4);
    let want = induce(&data, &cfg);
    let dir = tmp_dir("presort");
    let plan = FaultPlan::new().with_crash(2, CrashPoint::CollSeq(2));
    let rec = induce_with_recovery(&data, &cfg, Some(Arc::new(plan)), &dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(rec.result.tree, want.tree);
    assert_eq!(rec.report.attempts, 2);
    assert_eq!(
        rec.report.crashes[0].level,
        u32::MAX,
        "died before any level"
    );
    assert_eq!(rec.report.crashes[0].resumed_from, None);
}

/// Two crashes in one run: the second attempt dies too (at a later level),
/// and the third completes from the newer checkpoint.
#[test]
fn survives_repeated_crashes_across_attempts() {
    let data = quest(300, ClassFunc::F6, 17);
    let cfg = ParConfig::new(3);
    let want = induce(&data, &cfg);
    assert!(want.levels >= 4);
    let dir = tmp_dir("repeat");
    let plan = FaultPlan::new()
        .with_crash(0, CrashPoint::Level(1))
        .with_crash(2, CrashPoint::Level(want.levels - 1));
    let rec = induce_with_recovery(&data, &cfg, Some(Arc::new(plan)), &dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(rec.result.tree, want.tree);
    assert_eq!(rec.report.attempts, 3);
    assert_eq!(rec.report.crashes.len(), 2);
    assert!(rec.report.crashes[1].coll_seq > rec.report.crashes[0].coll_seq);
}

/// The fault layer compiled in but idle — `None` plan, or an installed
/// empty plan — charges byte-for-byte the same simulated costs as plain
/// `induce`, per rank.
#[test]
fn disabled_fault_layer_is_cost_free() {
    let data = quest(400, ClassFunc::F2, 23);
    for p in [2usize, 5] {
        let cfg = ParConfig::new(p);
        let plain = induce(&data, &cfg);
        let none = try_induce(&data, &cfg, None, None).unwrap();
        let empty = try_induce(&data, &cfg, Some(Arc::new(FaultPlan::new())), None).unwrap();
        for r in [&none, &empty] {
            assert_eq!(r.tree, plain.tree, "p={p}");
            assert_eq!(r.stats.time_ns(), plain.stats.time_ns(), "p={p}");
            for (a, b) in plain.stats.ranks.iter().zip(&r.stats.ranks) {
                assert_eq!(a.bytes_sent, b.bytes_sent, "p={p}");
                assert_eq!(a.comm_ns, b.comm_ns, "p={p}");
                assert_eq!(a.compute_ns, b.compute_ns, "p={p}");
            }
        }
    }
}

/// Message faults and stragglers replay deterministically: two runs under
/// the identical plan produce the identical tree, identical simulated
/// clocks, and an identical per-rank fault log.
#[test]
fn fault_schedule_replays_deterministically() {
    let data = quest(350, ClassFunc::F6, 31);
    let cfg = ParConfig::new(4).traced();
    let plan = FaultPlan::random_comm(99, 40, 10_000)
        .with_comm_fault(3, FaultKind::Corrupt)
        .with_straggler(1, 2, 9, 1_500);
    let run = |_: usize| try_induce(&data, &cfg, Some(Arc::new(plan.clone())), None).unwrap();
    let (a, b) = (run(0), run(1));
    assert_eq!(a.tree, b.tree);
    assert_eq!(a.stats.time_ns(), b.stats.time_ns());
    let (ta, tb) = (a.stats.traces().unwrap(), b.stats.traces().unwrap());
    let fault_count: usize = ta.iter().map(|t| t.faults.len()).sum();
    assert!(fault_count > 0, "plan injected nothing");
    for (x, y) in ta.iter().zip(&tb) {
        assert_eq!(x.faults, y.faults, "rank {} fault log differs", x.rank);
    }
    // And the faulted tree still matches the fault-free one.
    assert_eq!(a.tree, induce(&data, &ParConfig::new(4)).tree);
}

/// Checkpoint files are canonical: loading a real per-level snapshot and
/// re-saving it reproduces the original file byte for byte, for every
/// level and rank a checkpointed run left behind.
#[test]
fn checkpoint_save_load_save_is_byte_identical() {
    let data = quest(280, ClassFunc::F2, 41);
    let cfg = ParConfig::new(3);
    let dir = tmp_dir("byteid");
    let run = try_induce(&data, &cfg, None, Some(&CheckpointCtx::new(&dir))).unwrap();
    let resave = tmp_dir("byteid-resave");
    let mut checked = 0;
    for level in 0..run.levels {
        for rank in 0..3 {
            let path = checkpoint::state_file(&dir, level, rank);
            let original = std::fs::read(&path).expect("checkpointed run left this file");
            let (state, _) = checkpoint::load_state(&dir, level, rank).unwrap();
            checkpoint::save_state(
                &resave,
                level,
                rank,
                &state.nodes,
                &state.works,
                &state.stats,
                state.table_slots.as_deref(),
            )
            .unwrap();
            let rewritten = std::fs::read(checkpoint::state_file(&resave, level, rank)).unwrap();
            assert_eq!(original, rewritten, "level {level} rank {rank}");
            checked += 1;
        }
    }
    assert!(checked >= 9, "expected at least 3 levels × 3 ranks");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&resave);
}

/// Copy a checkpoint directory, so one written generation set can be
/// restored at several geometries without the restores contaminating each
/// other (a completed restore commits new generations of its own).
fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for e in std::fs::read_dir(src).unwrap().flatten() {
        std::fs::copy(e.path(), dst.join(e.file_name())).unwrap();
    }
}

/// Crash a checkpointed `p`-rank run right after level `upto`'s commit,
/// leaving generations `0..=upto` in `dir`.
fn write_generations(data: &Dataset, p: usize, upto: u32, dir: &std::path::Path) {
    let plan = FaultPlan::new().with_crash(0, CrashPoint::Level(upto));
    let err = try_induce(
        data,
        &ParConfig::new(p),
        Some(Arc::new(plan)),
        Some(&CheckpointCtx::new(dir)),
    )
    .expect_err("writer run is supposed to crash");
    assert_eq!(err.signal.level, upto);
}

/// The elastic-recovery guarantee, exhaustively: a checkpoint written at
/// `p ∈ {2, 4, 8}`, interrupted at *every* level, restores and completes
/// at every `p' ≤ 8` — the final tree and its confusion matrix equal a
/// fault-free `p'` run's. (`p = 8 → p' = 4` and `4 → 8` from the
/// acceptance criteria are grid points of this sweep.)
#[test]
fn restore_grid_rescales_across_geometries() {
    let data = quest(240, ClassFunc::F2, 7);
    let wants: Vec<_> = (1..=8usize)
        .map(|p2| {
            let w = induce(&data, &ParConfig::new(p2));
            (model_io::to_text(&w.tree), confusion_matrix(&w.tree, &data))
        })
        .collect();
    let levels = induce(&data, &ParConfig::new(2)).levels;
    assert!(levels >= 3, "workload too shallow to be interesting");
    for p in [2usize, 4, 8] {
        for level in 0..levels {
            let master = tmp_dir(&format!("regrid-{p}-{level}"));
            write_generations(&data, p, level, &master);
            for p2 in 1..=8usize {
                let dir = tmp_dir(&format!("regrid-{p}-{level}-{p2}"));
                copy_dir(&master, &dir);
                let run = try_induce(
                    &data,
                    &ParConfig::new(p2),
                    None,
                    Some(&CheckpointCtx::new(&dir)),
                )
                .expect("no fault plan, no crash");
                let _ = std::fs::remove_dir_all(&dir);
                let (want_text, want_conf) = &wants[p2 - 1];
                assert_eq!(
                    &model_io::to_text(&run.tree),
                    want_text,
                    "write p={p} crash level={level} restore p'={p2}: tree differs"
                );
                assert_eq!(
                    &confusion_matrix(&run.tree, &data),
                    want_conf,
                    "write p={p} crash level={level} restore p'={p2}: confusion differs"
                );
            }
            let _ = std::fs::remove_dir_all(&master);
        }
    }
}

/// `RecoveryPolicy::Shrink`: each crash drops one rank, the restored
/// checkpoint is re-blocked onto the survivors, redistribution I/O is
/// accounted, and the final tree matches a fault-free run.
#[test]
fn shrink_policy_completes_on_survivors() {
    let data = quest(300, ClassFunc::F6, 29);
    let p = 5usize;
    let want = induce(&data, &ParConfig::new(p));
    assert!(want.levels >= 4);
    let plan = FaultPlan::new()
        .with_crash(p - 1, CrashPoint::Level(1))
        .with_crash(0, CrashPoint::Level(2));
    let dir = tmp_dir("shrink");
    let rec = induce_with_recovery_policy(
        &data,
        &ParConfig::new(p),
        Some(Arc::new(plan.clone())),
        &CheckpointCtx::new(&dir),
        RecoveryPolicy::Shrink { min_procs: 1 },
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        model_io::to_text(&rec.result.tree),
        model_io::to_text(&want.tree)
    );
    assert_eq!(rec.report.attempts, 3);
    assert_eq!(
        rec.report.final_procs as usize,
        p - 2,
        "two crashes, two shrinks"
    );
    assert_eq!(rec.report.crashes[0].procs as usize, p);
    assert_eq!(rec.report.crashes[1].procs as usize, p - 1);
    assert_eq!(rec.report.rescales.len(), 2);
    assert_eq!(rec.report.rescales[0].from_procs as usize, p);
    assert_eq!(rec.report.rescales[0].to_procs as usize, p - 1);
    assert!(
        rec.report.redistribution_bytes > 0,
        "re-blocking a restored generation costs surplus restore I/O"
    );
    assert_eq!(
        rec.report.redistribution_bytes,
        rec.report
            .rescales
            .iter()
            .map(|r| r.redistribution_bytes)
            .sum::<u64>()
    );

    // A floor above 1: repeated crashes shrink to it and no further.
    let dir = tmp_dir("shrink-floor");
    let rec = induce_with_recovery_policy(
        &data,
        &ParConfig::new(p),
        Some(Arc::new(plan)),
        &CheckpointCtx::new(&dir),
        RecoveryPolicy::Shrink { min_procs: p - 1 },
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        model_io::to_text(&rec.result.tree),
        model_io::to_text(&want.tree)
    );
    assert_eq!(
        rec.report.final_procs as usize,
        p - 1,
        "clamped at the floor"
    );
    assert_eq!(
        rec.report.rescales.len(),
        1,
        "the second crash retried in place"
    );
}

/// A bit-flipped (or torn) newest generation is detected by the restore
/// scan and skipped: recovery lands on the previous intact generation,
/// reports the walk, and still reproduces the fault-free tree.
#[test]
fn storage_fault_walks_to_previous_generation() {
    let data = quest(260, ClassFunc::F2, 33);
    let p = 3usize;
    let want = induce(&data, &ParConfig::new(p));
    let want_text = model_io::to_text(&want.tree);
    let want_conf = confusion_matrix(&want.tree, &data);
    assert!(want.levels >= 3);
    for kind in [StorageFaultKind::BitFlip, StorageFaultKind::TornWrite] {
        // Level 2's commit is checkpoint sequence 3; damaging rank 1's
        // file leaves generation 2 unusable, generation 1 intact.
        let plan = FaultPlan::new()
            .with_crash(0, CrashPoint::Level(2))
            .with_storage_fault(1, 3, kind);
        let dir = tmp_dir(&format!("walk-{kind:?}"));
        let rec = induce_with_recovery(&data, &ParConfig::new(p), Some(Arc::new(plan)), &dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(model_io::to_text(&rec.result.tree), want_text, "{kind:?}");
        assert_eq!(confusion_matrix(&rec.result.tree, &data), want_conf);
        assert_eq!(rec.report.crashes[0].resumed_from, Some(1), "{kind:?}");
        assert_eq!(rec.report.generations_walked, 1, "{kind:?}");
        assert!(
            matches!(
                rec.report.crashes[0].restore,
                RestoreVerdict::Usable {
                    skipped_corrupt: 1,
                    ..
                }
            ),
            "{kind:?}: {:?}",
            rec.report.crashes[0].restore
        );
    }
}

/// Every generation corrupt: the restore scan reports `AllCorrupt` and
/// recovery falls back to a clean fresh start — degraded, never a panic.
#[test]
fn all_generations_corrupt_falls_back_to_fresh_start() {
    let data = quest(260, ClassFunc::F2, 37);
    let p = 3usize;
    let want = induce(&data, &ParConfig::new(p));
    let mut plan = FaultPlan::new().with_crash(0, CrashPoint::Level(2));
    for seq in 1..=3u64 {
        plan = plan.with_storage_fault(0, seq, StorageFaultKind::MissingFile);
    }
    let dir = tmp_dir("all-corrupt");
    let rec = induce_with_recovery(&data, &ParConfig::new(p), Some(Arc::new(plan)), &dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(rec.result.tree, want.tree);
    assert_eq!(rec.report.attempts, 2);
    assert_eq!(rec.report.crashes[0].resumed_from, None);
    assert!(
        matches!(
            rec.report.crashes[0].restore,
            RestoreVerdict::AllCorrupt { generations: 3 }
        ),
        "{:?}",
        rec.report.crashes[0].restore
    );
}

/// Keep-last-K retention: a checkpointed run with `with_keep(2)` leaves
/// exactly two generations on disk — `K × (manifest + p rank files)` at
/// steady state — while an unlimited run keeps one generation per level.
#[test]
fn gc_retains_keep_last_k_files() {
    let data = quest(280, ClassFunc::F2, 41);
    let p = 3usize;
    let dir = tmp_dir("gc");
    let run = try_induce(
        &data,
        &ParConfig::new(p),
        None,
        Some(&CheckpointCtx::new(&dir).with_keep(2)),
    )
    .unwrap();
    assert!(
        run.levels >= 3,
        "need more levels than the retention window"
    );
    let last = run.levels - 1;
    assert_eq!(checkpoint::list_generations(&dir), vec![last, last - 1]);
    let files = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(
        files,
        2 * (p + 1),
        "steady state: 2 generations × (manifest + {p} rank files)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cost parity: the retention knob and the storage-fault hook are free.
/// A checkpointed run charges byte-for-byte identical simulated costs
/// whether retention is unlimited or keep-K, and whether the fault layer
/// is uninstalled or installed-but-idle.
#[test]
fn retention_and_idle_fault_layer_are_cost_free() {
    let data = quest(300, ClassFunc::F2, 43);
    let p = 4usize;
    let dir = tmp_dir("parity-base");
    let base = try_induce(
        &data,
        &ParConfig::new(p),
        None,
        Some(&CheckpointCtx::new(&dir)),
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    type Variant = (&'static str, Option<Arc<FaultPlan>>, Option<usize>);
    let variants: [Variant; 3] = [
        ("keep=2", None, Some(2)),
        ("keep=1", None, Some(1)),
        ("empty plan", Some(Arc::new(FaultPlan::new())), None),
    ];
    for (what, fault, keep) in variants {
        let dir = tmp_dir(&format!("parity-{what}"));
        let mut ctx = CheckpointCtx::new(&dir);
        if let Some(k) = keep {
            ctx = ctx.with_keep(k);
        }
        let run = try_induce(&data, &ParConfig::new(p), fault, Some(&ctx)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(run.tree, base.tree, "{what}");
        assert_eq!(run.stats.time_ns(), base.stats.time_ns(), "{what}");
        for (a, b) in base.stats.ranks.iter().zip(&run.stats.ranks) {
            assert_eq!(a.bytes_sent, b.bytes_sent, "{what}");
            assert_eq!(a.comm_ns, b.comm_ns, "{what}");
            assert_eq!(a.compute_ns, b.compute_ns, "{what}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Property: for arbitrary small workloads, processor counts, and
    /// crash levels, recovery reproduces the fault-free tree exactly.
    #[test]
    fn prop_recovery_is_transparent(
        n in 60usize..240,
        seed in 0u64..1000,
        p in 2usize..6,
        crash_rank in 0usize..6,
        level_pick in 0u32..8,
    ) {
        let data = quest(n, ClassFunc::F2, seed);
        let cfg = ParConfig::new(p);
        let want = induce(&data, &cfg);
        let level = level_pick % want.levels;
        let dir = tmp_dir(&format!("prop-{n}-{seed}-{p}-{level}"));
        let plan = FaultPlan::new().with_crash(crash_rank % p, CrashPoint::Level(level));
        let rec = induce_with_recovery(&data, &cfg, Some(Arc::new(plan)), &dir);
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(
            model_io::to_text(&rec.result.tree),
            model_io::to_text(&want.tree)
        );
        prop_assert_eq!(rec.report.attempts, 2);
    }
}
