//! Steady-state allocation tests for the per-level hot-path kernels.
//!
//! A thread-local counting allocator wraps the system allocator; each test
//! warms a kernel once (populating its scratch / receive buffers), then
//! measures the allocation delta of subsequent identically-shaped rounds.
//! The hot kernels must be allocation-free in steady state:
//!
//! * the continuous split-point scan allocates nothing per reset+push round;
//! * the exact-capacity partitions allocate only the child lists themselves
//!   (a count independent of the number of records) and never reallocate;
//! * a distributed-table update/inquire round and a flat all-to-all exchange
//!   perform a constant number of allocations (the simulator's per-collective
//!   deposit box), independent of payload size;
//! * with the observability recorder disabled (the default), phase spans add
//!   exactly zero allocations around a warm collective and the run carries
//!   no trace — tracing off is observably free.
//!
//! Counters are per-thread, so the measurements ignore the other test
//! threads and the mpsim rank threads measure their own work.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dhash::DistTable;
use dtree::gini::ContinuousScan;
use dtree::list::{AttrList, ContEntry};
use dtree::tree::SplitTest;
use mpsim::{run, run_simple, MachineCfg};
use scalparc::phases::{split_by_children, split_directly};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static REALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

fn reallocs() -> u64 {
    REALLOCS.with(Cell::get)
}

#[test]
fn continuous_scan_round_is_allocation_free() {
    let classes = 3usize;
    let n = 4096usize;
    let mut sorted: Vec<(f32, u8)> = (0..n)
        .map(|i| ((i as f32).sin(), (i % classes) as u8))
        .collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = vec![0u64; classes];
    for &(_, c) in &sorted {
        total[c as usize] += 1;
    }
    let below = vec![0u64; classes];

    let mut scan = ContinuousScan::fresh(total.clone());
    // Warm-up round: the scan's internal buffers reach final capacity.
    scan.reset(&total, &below, None);
    for &(v, c) in &sorted {
        scan.push(v, c);
    }
    assert!(scan.best().is_some());

    let (a0, r0) = (allocs(), reallocs());
    scan.reset(&total, &below, None);
    for &(v, c) in &sorted {
        scan.push(v, c);
    }
    let best = scan.best();
    let (da, dr) = (allocs() - a0, reallocs() - r0);
    assert!(best.is_some());
    assert_eq!(da, 0, "scan round allocated {da} times in steady state");
    assert_eq!(dr, 0, "scan round reallocated {dr} times in steady state");
}

fn cont_list(n: usize) -> AttrList {
    AttrList::Continuous(
        (0..n)
            .map(|i| ContEntry {
                value: (i % 97) as f32,
                rid: i as u32,
                class: (i % 2) as u16,
            })
            .collect(),
    )
}

#[test]
fn partition_by_children_allocates_exact_capacity_only() {
    let measure = |n: usize| {
        let list = cont_list(n);
        let children: Vec<u8> = (0..n).map(|i| u8::from((i * 7) % 3 != 0)).collect();
        let mut counts = vec![0usize; 2];
        let (a0, r0) = (allocs(), reallocs());
        let parts = split_by_children(list, 2, &children, &mut counts);
        let (da, dr) = (allocs() - a0, reallocs() - r0);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(AttrList::len).sum::<usize>(), n);
        (da, dr)
    };
    let (a_small, r_small) = measure(1_000);
    let (a_large, r_large) = measure(64_000);
    // Count-pass sizing: no reallocation ever, and the number of allocations
    // (the child lists plus wrapper vectors) is independent of the record
    // count — a growth-by-doubling implementation would reallocate O(log n)
    // times per child.
    assert_eq!(r_small, 0);
    assert_eq!(r_large, 0);
    assert_eq!(a_small, a_large);
    assert!(a_small <= 4, "expected ≤4 allocations, got {a_small}");
}

#[test]
fn partition_directly_allocates_exact_capacity_only() {
    let test = SplitTest::Continuous {
        attr: 0,
        threshold: 48.0,
    };
    let measure = |n: usize| {
        let list = cont_list(n);
        let mut counts = vec![0usize; 2];
        let (a0, r0) = (allocs(), reallocs());
        let parts = split_directly(list, &test, 2, &mut counts);
        let (da, dr) = (allocs() - a0, reallocs() - r0);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(AttrList::len).sum::<usize>(), n);
        (da, dr)
    };
    let (a_small, r_small) = measure(1_000);
    let (a_large, r_large) = measure(64_000);
    assert_eq!(r_small, 0);
    assert_eq!(r_large, 0);
    assert_eq!(a_small, a_large);
    assert!(a_small <= 4, "expected ≤4 allocations, got {a_small}");
}

/// Per-round allocation delta of a warm `update` + `inquire_into` pair on a
/// single-rank machine (rank threads measure their own thread-local counts).
fn dist_table_round_deltas(n_keys: u64, rounds: usize) -> Vec<u64> {
    run_simple(1, move |comm| {
        let mut table = DistTable::<u8>::new(comm, n_keys);
        let entries: Vec<(u64, u8)> = (0..n_keys).map(|k| (k, (k % 5) as u8)).collect();
        let keys: Vec<u64> = (0..n_keys).rev().collect();
        let mut out = Vec::new();
        // Warm-up: scratch and receive buffers reach final capacity.
        table.update(comm, &entries);
        table.inquire_into(comm, &keys, &mut out);
        let mut deltas = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            out.clear();
            let a0 = allocs();
            table.update(comm, &entries);
            table.inquire_into(comm, &keys, &mut out);
            deltas.push(allocs() - a0);
        }
        assert_eq!(out.len(), n_keys as usize);
        deltas
    })
    .pop()
    .unwrap()
}

#[test]
fn dist_table_round_allocations_are_constant() {
    let small = dist_table_round_deltas(512, 3);
    let large = dist_table_round_deltas(4096, 3);
    // Every steady round costs the same fixed number of allocations (the
    // simulator's per-collective deposit boxes), no matter the batch size:
    // the table's scratch arena and the flat exchange buffers are reused.
    assert!(
        small.iter().all(|&d| d == small[0]),
        "unsteady rounds: {small:?}"
    );
    assert_eq!(small, large, "allocations scale with batch size");
    assert!(
        small[0] <= 8,
        "per-round overhead should be a few deposit boxes, got {}",
        small[0]
    );
}

#[test]
fn flat_exchange_round_allocations_are_constant() {
    let round_delta = |n: usize| {
        let outs = run_simple(2, move |comm| {
            let counts = vec![n, n];
            let send: Vec<u64> = (0..2 * n as u64).collect();
            let mut recv = Vec::new();
            let mut recv_counts = Vec::new();
            comm.alltoallv_flat_into(&send, &counts, &mut recv, &mut recv_counts);
            let a0 = allocs();
            comm.alltoallv_flat_into(&send, &counts, &mut recv, &mut recv_counts);
            let delta = allocs() - a0;
            assert_eq!(recv.len(), 2 * n);
            delta
        });
        assert_eq!(outs[0], outs[1]);
        outs[0]
    };
    let d_small = round_delta(256);
    let d_large = round_delta(8192);
    assert_eq!(
        d_small, d_large,
        "flat exchange allocations scale with payload"
    );
    assert!(
        d_small <= 4,
        "expected only the deposit box per call, got {d_small}"
    );
}

#[test]
fn disabled_tracing_is_observably_free() {
    // Default machine configuration: the recorder is compiled in but
    // disabled. A phase-wrapped warm collective must cost exactly as many
    // allocations as the bare collective — the wrapper is a strict no-op —
    // and the run must carry no trace.
    let result = run(&MachineCfg::new(2), |comm| {
        let me = comm.rank() as u64;
        // Warm-up: the collective's deposit boxes reach final capacity.
        comm.phase_begin("warm", 0);
        comm.allreduce(me, |a, b| *a += *b);
        comm.phase_end();

        let a0 = allocs();
        comm.allreduce(me, |a, b| *a += *b);
        let bare = allocs() - a0;

        let a1 = allocs();
        comm.phase_begin("round", 1);
        comm.allreduce(me, |a, b| *a += *b);
        comm.phase_end();
        let wrapped = allocs() - a1;
        (bare, wrapped)
    });
    for (rank, (bare, wrapped)) in result.outputs.into_iter().enumerate() {
        assert_eq!(
            wrapped, bare,
            "rank {rank}: disabled phase span added allocations"
        );
    }
    for (rank, rs) in result.stats.ranks.iter().enumerate() {
        assert!(rs.trace.is_none(), "rank {rank}: untraced run has a trace");
    }
}
