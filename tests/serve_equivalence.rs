//! Serving-path equivalence: the compiled flat tree and every consumer of
//! its batched kernel (the harness, the distributed scorer, the re-pointed
//! evaluation helpers) produce exactly what the per-record oracle
//! `DecisionTree::predict` produces.
//!
//! Two proptest axes:
//! * **arbitrary trees** (`dtree::testgen`) × random datasets — covers
//!   structural shapes no inducer builds (deep chains, wide categorical
//!   fans, degenerate masks);
//! * **induced trees** on Quest data (the paper's generator, with label
//!   noise so trees grow large) scored on *held-out* Quest records —
//!   covers the shapes real models take, on records the tree never saw.

use std::sync::Arc;

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::flat::FlatTree;
use dtree::sprint::{self, SprintConfig};
use dtree::testgen::{self, TestRng};
use dtree::{eval, DecisionTree};
use mpsim::MachineCfg;
use proptest::prelude::*;
use serve::{score_distributed, Request, ServeConfig, Server};

fn cases(n: u32) -> ProptestConfig {
    ProptestConfig { cases: n }
}

fn assert_flat_equals_oracle(tree: &DecisionTree, data: &dtree::Dataset) {
    let flat = FlatTree::compile(tree);
    let mut batch = vec![0u8; data.len()];
    flat.predict_batch(data, &mut batch);
    for (rid, &got) in batch.iter().enumerate() {
        let oracle = tree.predict(data, rid);
        assert_eq!(got, oracle, "batch kernel diverged at record {rid}");
        assert_eq!(
            flat.predict(data, rid),
            oracle,
            "flat single-record walk diverged at record {rid}"
        );
    }
}

proptest! {
    #![proptest_config(cases(32))]

    #[test]
    fn flat_batch_equals_oracle_on_arbitrary_trees(
        seed in 0u64..(1u64 << 48),
        n in 1usize..400,
    ) {
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        let tree = testgen::random_tree(&schema, &mut rng, 7, 250);
        let data = testgen::random_dataset(&schema, &mut rng, n);
        assert_flat_equals_oracle(&tree, &data);
    }

    #[test]
    fn flat_batch_equals_oracle_on_induced_quest_trees(
        seed in 0u64..(1u64 << 32),
        n in 200usize..1200,
        func_pick in 0usize..4,
    ) {
        let func = [ClassFunc::F1, ClassFunc::F2, ClassFunc::F6, ClassFunc::F7][func_pick];
        // Label noise makes the inducer grow deep, irregular trees.
        let train = generate(&GenConfig { n, func, noise: 0.08, seed, profile: Profile::Paper7 });
        let tree = sprint::induce(&train, &SprintConfig::default());
        // Score held-out records: unseen values exercise every routing arm.
        let test = generate(&GenConfig { n: 500, func, noise: 0.0, seed: seed ^ 0xDEAD, profile: Profile::Paper7 });
        assert_flat_equals_oracle(&tree, &train);
        assert_flat_equals_oracle(&tree, &test);
    }

    #[test]
    fn distributed_scoring_equals_serial_confusion(
        seed in 0u64..(1u64 << 32),
        p in 1usize..6,
        n in 1usize..300,
    ) {
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        let tree = testgen::random_tree(&schema, &mut rng, 6, 120);
        let data = testgen::random_dataset(&schema, &mut rng, n);
        let serial = eval::confusion_matrix(&tree, &data);
        let dist = score_distributed(&tree, &data, &MachineCfg::new(p));
        prop_assert_eq!(dist.confusion, serial);
    }
}

/// End-to-end through the concurrent harness: chunked submissions
/// reassemble to exactly the oracle's predictions, and the report is sane.
#[test]
fn harness_scoring_matches_oracle_end_to_end() {
    let train = generate(&GenConfig {
        n: 2_000,
        func: ClassFunc::F2,
        noise: 0.05,
        seed: 4242,
        profile: Profile::Paper7,
    });
    let tree = sprint::induce(&train, &SprintConfig::default());
    let data = Arc::new(generate(&GenConfig {
        n: 3_000,
        func: ClassFunc::F2,
        noise: 0.0,
        seed: 99,
        profile: Profile::Paper7,
    }));

    let server = Server::start(
        FlatTree::compile(&tree),
        ServeConfig {
            workers: 4,
            queue_depth: 128,
            ..ServeConfig::default()
        },
    );
    let batch = 256;
    let rxs: Vec<_> = (0..data.len())
        .step_by(batch)
        .map(|lo| {
            let hi = (lo + batch).min(data.len());
            server
                .submit(Request {
                    data: Arc::clone(&data),
                    lo,
                    hi,
                })
                .expect("queue sized for the whole sweep")
        })
        .collect();
    let mut served = vec![0u8; data.len()];
    for rx in rxs {
        let resp = rx.recv().unwrap();
        served[resp.lo..resp.hi].copy_from_slice(&resp.predictions);
    }
    let report = server.shutdown();

    for (rid, &got) in served.iter().enumerate() {
        assert_eq!(got, tree.predict(&data, rid), "record {rid}");
    }
    assert_eq!(report.records, data.len() as u64);
    assert!(report.records_per_sec > 0.0);
    assert!(report.p99 >= report.p50);
}

/// The re-pointed evaluation helpers agree with per-record counting.
#[test]
fn repointed_eval_matches_per_record_counting() {
    let data = generate(&GenConfig {
        n: 1_500,
        func: ClassFunc::F6,
        noise: 0.1,
        seed: 7,
        profile: Profile::Paper7,
    });
    let tree = sprint::induce(&data, &SprintConfig::default());

    let hits = (0..data.len())
        .filter(|&i| tree.predict(&data, i) == data.labels[i])
        .count();
    assert_eq!(tree.accuracy(&data), hits as f64 / data.len() as f64);
    assert_eq!(
        eval::error_rate(&tree, &data),
        1.0 - hits as f64 / data.len() as f64
    );

    let m = eval::confusion_matrix(&tree, &data);
    assert_eq!(m.total(), data.len() as u64);
    let diag: u64 = (0..data.schema.num_classes as usize)
        .map(|c| m.get(c, c))
        .sum();
    assert_eq!(diag, hits as u64);
}
