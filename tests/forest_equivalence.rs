//! Forest-engine equivalence: the scheduler's determinism contract, the
//! vote reduce's parity with a per-tree oracle, the CRC'd persistence
//! round trip, and distributed forest scoring.
//!
//! The load-bearing property is **layout identity**: for fixed seeds the
//! forest is byte-identical (via `model_io::forest_to_text`, which covers
//! structure, exact thresholds, histograms, and schema) across serial,
//! data-parallel, tree-parallel, and hybrid round-robin schedules at every
//! processor count — bagged samples are regenerated per index from
//! `(seed, tree, i)` and induction is geometry-invariant, so the machine
//! shape can never leak into the model.

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::flat_forest::{FlatForest, VoteReduce};
use dtree::testgen::{self, TestRng};
use dtree::{model_io, Dataset};
use mpsim::MachineCfg;
use proptest::prelude::*;
use scalparc::forest::{self, train_forest, ForestConfig, ForestSchedule};
use scalparc::ParConfig;
use serve::score_forest_distributed;

fn cases(n: u32) -> ProptestConfig {
    ProptestConfig { cases: n }
}

fn quest(n: usize, func: ClassFunc, noise: f64, seed: u64) -> Dataset {
    generate(&GenConfig {
        n,
        func,
        noise,
        seed,
        profile: Profile::Paper7,
    })
}

/// The grid the ISSUE pins: p × n_trees × seed, every schedule against the
/// serial reference, compared as serialized bytes.
#[test]
fn forest_layout_identity_grid() {
    for &seed in &[3u64, 17] {
        for &n_trees in &[1usize, 3, 4] {
            let data = quest(260, ClassFunc::F2, 0.05, seed);
            let fcfg = ForestConfig {
                n_trees,
                bootstrap: 1.0,
                feature_frac: 0.7,
                seed,
                schedule: ForestSchedule::Serial,
            };
            let want =
                model_io::forest_to_text(&train_forest(&data, &fcfg, &ParConfig::new(1)).trees);
            for &p in &[1usize, 2, 3, 5, 8] {
                for schedule in [
                    ForestSchedule::DataParallel,
                    ForestSchedule::TreeParallel,
                    ForestSchedule::Auto,
                ] {
                    let cfg = ForestConfig { schedule, ..fcfg };
                    let got = train_forest(&data, &cfg, &ParConfig::new(p));
                    assert_eq!(
                        model_io::forest_to_text(&got.trees),
                        want,
                        "seed={seed} n_trees={n_trees} p={p} {schedule:?}"
                    );
                    // Every tree appears once, in index order, under the
                    // full training schema.
                    assert_eq!(got.trees.len(), n_trees);
                    for (t, stat) in got.per_tree.iter().enumerate() {
                        assert_eq!(stat.tree, t);
                        assert!(stat.nodes >= 1);
                    }
                }
            }
        }
    }
}

/// A trained forest survives the CRC'd container round trip exactly, and a
/// flipped bit is a load error, never a silently-parsed model.
#[test]
fn forest_container_roundtrip_and_corruption() {
    let data = quest(300, ClassFunc::F3, 0.05, 9);
    let fcfg = ForestConfig {
        n_trees: 3,
        feature_frac: 0.8,
        ..ForestConfig::default()
    };
    let trees = train_forest(&data, &fcfg, &ParConfig::new(2)).trees;
    let dir = std::env::temp_dir().join(format!("scalparc-forest-xtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("forest.scpf");
    forest::save_forest(&trees, &path).unwrap();
    let loaded = forest::load_forest(&path).unwrap();
    assert_eq!(loaded, trees);
    // Loaded and original forests serve identically.
    let a = FlatForest::compile(&trees, VoteReduce::Majority);
    let b = FlatForest::compile(&loaded, VoteReduce::Majority);
    let mut pa = vec![0u8; data.len()];
    let mut pb = vec![0u8; data.len()];
    a.predict_batch(&data, &mut pa);
    b.predict_batch(&data, &mut pb);
    assert_eq!(pa, pb);

    diskio::ckpt::damage_flip_bit(&path).unwrap();
    assert!(
        forest::load_forest(&path).is_err(),
        "a corrupt container must not load"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Distributed forest scoring reproduces the serial confusion matrix at
/// every machine size, for both vote reduces, on held-out data.
#[test]
fn distributed_forest_scoring_matches_serial() {
    let train = quest(400, ClassFunc::F2, 0.08, 31);
    let test = quest(350, ClassFunc::F2, 0.0, 77);
    let fcfg = ForestConfig {
        n_trees: 4,
        ..ForestConfig::default()
    };
    let trees = train_forest(&train, &fcfg, &ParConfig::new(4)).trees;
    let classes = test.schema.num_classes as usize;
    for reduce in [VoteReduce::Majority, VoteReduce::ProbAverage] {
        let flat = FlatForest::compile(&trees, reduce);
        let mut preds = vec![0u8; test.len()];
        flat.predict_batch(&test, &mut preds);
        let mut want = vec![0u64; classes * classes];
        for (t, p) in test.labels.iter().zip(&preds) {
            want[*t as usize * classes + *p as usize] += 1;
        }
        for p in [1usize, 2, 5, 9] {
            let d = score_forest_distributed(&trees, reduce, &test, &MachineCfg::new(p));
            let got: Vec<u64> = (0..classes)
                .flat_map(|r| (0..classes).map(move |c| (r, c)))
                .map(|(r, c)| d.confusion.get(r, c))
                .collect();
            assert_eq!(got, want, "{reduce:?} p={p}");
            assert_eq!(d.accuracy, flat.accuracy(&test), "{reduce:?} p={p}");
        }
    }
}

proptest! {
    #![proptest_config(cases(24))]

    /// The FlatForest majority vote equals a per-record oracle that walks
    /// every member tree with `DecisionTree::predict` and takes the
    /// majority (lowest class index on ties) — on arbitrary random
    /// forests, not just induced ones.
    #[test]
    fn flat_forest_vote_equals_per_tree_oracle(
        seed in 0u64..(1u64 << 48),
        k in 1usize..7,
        n in 1usize..300,
    ) {
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        let trees = testgen::random_forest(&schema, &mut rng, k, 6, 120);
        let data = testgen::random_dataset(&schema, &mut rng, n);
        let flat = FlatForest::compile(&trees, VoteReduce::Majority);
        let mut got = vec![0u8; n];
        flat.predict_batch(&data, &mut got);
        for rid in 0..n {
            let mut votes = vec![0u32; schema.num_classes as usize];
            for tree in &trees {
                votes[tree.predict(&data, rid) as usize] += 1;
            }
            let oracle = votes
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(c, _)| c as u8)
                .unwrap();
            prop_assert_eq!(got[rid], oracle, "record {} of {} trees", rid, k);
        }
    }

    /// Induced-forest layout identity as a property: random seed, tree
    /// count, and machine size — tree-parallel equals serial.
    #[test]
    fn induced_forest_is_layout_invariant(
        seed in 0u64..(1u64 << 32),
        n_trees in 1usize..5,
        p in 1usize..7,
    ) {
        let data = quest(180, ClassFunc::F1, 0.05, seed);
        let fcfg = ForestConfig {
            n_trees,
            bootstrap: 0.9,
            feature_frac: 0.75,
            seed,
            schedule: ForestSchedule::Serial,
        };
        let want = train_forest(&data, &fcfg, &ParConfig::new(1)).trees;
        let got = train_forest(
            &data,
            &ForestConfig { schedule: ForestSchedule::TreeParallel, ..fcfg },
            &ParConfig::new(p),
        )
        .trees;
        prop_assert_eq!(got, want);
    }
}
