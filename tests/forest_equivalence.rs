//! Forest-engine equivalence: the scheduler's determinism contract, the
//! vote reduce's parity with a per-tree oracle, the CRC'd persistence
//! round trip, and distributed forest scoring.
//!
//! The load-bearing property is **layout identity**: for fixed seeds the
//! forest is byte-identical (via `model_io::forest_to_text`, which covers
//! structure, exact thresholds, histograms, and schema) across serial,
//! data-parallel, tree-parallel, and hybrid round-robin schedules at every
//! processor count — bagged samples are regenerated per index from
//! `(seed, tree, i)` and induction is geometry-invariant, so the machine
//! shape can never leak into the model.

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::flat_forest::{FlatForest, VoteReduce};
use dtree::testgen::{self, TestRng};
use dtree::{model_io, Dataset};
use mpsim::{CrashPoint, FaultPlan, MachineCfg};
use proptest::prelude::*;
use scalparc::forest::{self, train_forest, ForestConfig, ForestSchedule, TreeVerdict};
use scalparc::{train_forest_with_recovery, ForestFaultPlan, ForestRecoveryPolicy, ParConfig};
use serve::score_forest_distributed;

fn cases(n: u32) -> ProptestConfig {
    ProptestConfig { cases: n }
}

fn quest(n: usize, func: ClassFunc, noise: f64, seed: u64) -> Dataset {
    generate(&GenConfig {
        n,
        func,
        noise,
        seed,
        profile: Profile::Paper7,
    })
}

/// The grid the ISSUE pins: p × n_trees × seed, every schedule against the
/// serial reference, compared as serialized bytes.
#[test]
fn forest_layout_identity_grid() {
    for &seed in &[3u64, 17] {
        for &n_trees in &[1usize, 3, 4] {
            let data = quest(260, ClassFunc::F2, 0.05, seed);
            let fcfg = ForestConfig {
                n_trees,
                bootstrap: 1.0,
                feature_frac: 0.7,
                seed,
                schedule: ForestSchedule::Serial,
            };
            let want =
                model_io::forest_to_text(&train_forest(&data, &fcfg, &ParConfig::new(1)).trees);
            for &p in &[1usize, 2, 3, 5, 8] {
                for schedule in [
                    ForestSchedule::DataParallel,
                    ForestSchedule::TreeParallel,
                    ForestSchedule::Auto,
                ] {
                    let cfg = ForestConfig { schedule, ..fcfg };
                    let got = train_forest(&data, &cfg, &ParConfig::new(p));
                    assert_eq!(
                        model_io::forest_to_text(&got.trees),
                        want,
                        "seed={seed} n_trees={n_trees} p={p} {schedule:?}"
                    );
                    // Every tree appears once, in index order, under the
                    // full training schema.
                    assert_eq!(got.trees.len(), n_trees);
                    for (t, stat) in got.per_tree.iter().enumerate() {
                        assert_eq!(stat.tree, t);
                        assert!(stat.nodes >= 1);
                    }
                }
            }
        }
    }
}

/// A trained forest survives the CRC'd container round trip exactly, and
/// damage to one tree's section surfaces as a per-slot verdict that never
/// hides the surviving trees.
#[test]
fn forest_container_roundtrip_and_corruption() {
    let data = quest(300, ClassFunc::F3, 0.05, 9);
    let fcfg = ForestConfig {
        n_trees: 3,
        feature_frac: 0.8,
        ..ForestConfig::default()
    };
    let trees = train_forest(&data, &fcfg, &ParConfig::new(2)).trees;
    let dir = std::env::temp_dir().join(format!("scalparc-forest-xtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("forest.scpf");
    forest::save_forest(&trees, &path).unwrap();
    let loaded = forest::load_forest_strict(&path).unwrap();
    assert_eq!(loaded, trees);
    // Loaded and original forests serve identically.
    let a = FlatForest::compile(&trees, VoteReduce::Majority);
    let b = FlatForest::compile(&loaded, VoteReduce::Majority);
    let mut pa = vec![0u8; data.len()];
    let mut pb = vec![0u8; data.len()];
    a.predict_batch(&data, &mut pa);
    b.predict_batch(&data, &mut pb);
    assert_eq!(pa, pb);

    // A flipped bit in one tree's section: that slot Corrupt, the others
    // clean, and the degraded replica still serves via `with_missing`.
    forest::damage_tree_section(&path, 2).unwrap();
    let v = forest::load_forest(&path).unwrap();
    assert_eq!(v.planned, 3);
    assert!(matches!(v.trees[2], TreeVerdict::Corrupt(_)));
    assert_eq!(v.n_ok(), 2);
    assert!(forest::load_forest_strict(&path).is_err());
    let partial = FlatForest::compile(&v.surviving(), VoteReduce::Majority)
        .with_planned(v.planned)
        .with_quorum_min(3);
    assert_eq!(partial.missing(), 1);
    assert!(partial.below_quorum());
    std::fs::remove_dir_all(&dir).ok();
}

/// Group crashes recover a forest byte-identical to the fault-free run —
/// retried in place or rescheduled onto survivors — with wasted work and
/// re-executed levels accounted per tree.
#[test]
fn crashed_groups_recover_byte_identical_forests() {
    let data = quest(280, ClassFunc::F2, 0.05, 19);
    let fcfg = ForestConfig {
        n_trees: 4,
        feature_frac: 0.8,
        seed: 19,
        schedule: ForestSchedule::TreeParallel,
        ..ForestConfig::default()
    };
    let par = ParConfig::new(4);
    let want = model_io::forest_to_text(&train_forest(&data, &fcfg, &par).trees);
    let root = std::env::temp_dir().join(format!("scalparc-forest-rec-{}", std::process::id()));
    let mut run_id = 0u64;
    for policy in [
        ForestRecoveryPolicy::RetryInPlace,
        ForestRecoveryPolicy::Reschedule,
    ] {
        for victim in 0..4usize {
            run_id += 1;
            let faults = ForestFaultPlan::new()
                .with_group(victim, FaultPlan::new().with_crash(0, CrashPoint::Level(1)));
            let ckpt = forest::ForestCheckpointCtx::new(&root, run_id);
            let out = train_forest_with_recovery(&data, &fcfg, &par, &faults, Some(&ckpt), policy);
            assert_eq!(
                model_io::forest_to_text(&out.result.trees),
                want,
                "{policy:?} victim group {victim}"
            );
            assert_eq!(out.report.crashes, 1, "{policy:?} victim {victim}");
            let s = &out.result.per_tree[victim];
            assert!(s.recovery.wasted_time_ns > 0 || s.procs == 1);
            assert_eq!(s.recovery.crashes.len(), 1);
            match policy {
                ForestRecoveryPolicy::RetryInPlace => {
                    assert!(out.report.rescheduled.is_empty());
                    assert_eq!(s.group, victim);
                }
                ForestRecoveryPolicy::Reschedule => {
                    assert_eq!(out.report.dead_groups, vec![victim]);
                    assert_eq!(s.rescheduled_from, Some(victim));
                    assert_ne!(s.group, victim, "tree moved off the dead group");
                }
            }
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// A straggler window inside one group slows exactly that group: the other
/// groups' per-tree statistics stay byte-identical and the forest makespan
/// remains the max over per-group sums. An installed-but-idle fault plan
/// charges nothing at all.
#[test]
fn straggler_windows_and_idle_faults_keep_accounting_honest() {
    let data = quest(320, ClassFunc::F2, 0.05, 23);
    let fcfg = ForestConfig {
        n_trees: 2,
        seed: 23,
        schedule: ForestSchedule::TreeParallel,
        ..ForestConfig::default()
    };
    let par = ParConfig::new(4); // 2 groups × 2 ranks
    let plain = train_forest(&data, &fcfg, &par);

    // Idle plan: a crash at a level the induction never reaches and a
    // straggler window past any collective. Cost parity must be exact.
    let idle = ForestFaultPlan::new().with_group(
        0,
        FaultPlan::new()
            .with_crash(0, CrashPoint::Level(10_000))
            .with_straggler(1, u64::MAX - 1, u64::MAX, 5000),
    );
    let out = train_forest_with_recovery(
        &data,
        &fcfg,
        &par,
        &idle,
        None,
        ForestRecoveryPolicy::RetryInPlace,
    );
    assert_eq!(out.report.crashes, 0);
    assert_eq!(
        model_io::forest_to_text(&out.result.trees),
        model_io::forest_to_text(&plain.trees)
    );
    for (a, b) in out.result.per_tree.iter().zip(&plain.per_tree) {
        assert_eq!(a.run.time_ns(), b.run.time_ns(), "tree {}", a.tree);
        assert_eq!(a.run.total_bytes_sent(), b.run.total_bytes_sent());
    }
    assert_eq!(out.result.train_time_ns(), plain.train_time_ns());

    // A firing straggler in group 1 slows only group 1.
    let slow =
        ForestFaultPlan::new().with_group(1, FaultPlan::new().with_straggler(0, 1, u64::MAX, 4000));
    let out = train_forest_with_recovery(
        &data,
        &fcfg,
        &par,
        &slow,
        None,
        ForestRecoveryPolicy::RetryInPlace,
    );
    assert_eq!(
        model_io::forest_to_text(&out.result.trees),
        model_io::forest_to_text(&plain.trees),
        "stragglers cost time, never correctness"
    );
    let t0 = &out.result.per_tree[0];
    let t1 = &out.result.per_tree[1];
    assert_eq!(t0.run.time_ns(), plain.per_tree[0].run.time_ns());
    assert!(t1.run.time_ns() > plain.per_tree[1].run.time_ns());
    // Makespan is still the max over per-group sums — the straggling
    // group's inflation never leaks into the other group's account.
    assert_eq!(
        out.result.train_time_ns(),
        t0.run.time_ns().max(t1.run.time_ns())
    );
}

/// Distributed forest scoring reproduces the serial confusion matrix at
/// every machine size, for both vote reduces, on held-out data.
#[test]
fn distributed_forest_scoring_matches_serial() {
    let train = quest(400, ClassFunc::F2, 0.08, 31);
    let test = quest(350, ClassFunc::F2, 0.0, 77);
    let fcfg = ForestConfig {
        n_trees: 4,
        ..ForestConfig::default()
    };
    let trees = train_forest(&train, &fcfg, &ParConfig::new(4)).trees;
    let classes = test.schema.num_classes as usize;
    for reduce in [VoteReduce::Majority, VoteReduce::ProbAverage] {
        let flat = FlatForest::compile(&trees, reduce);
        let mut preds = vec![0u8; test.len()];
        flat.predict_batch(&test, &mut preds);
        let mut want = vec![0u64; classes * classes];
        for (t, p) in test.labels.iter().zip(&preds) {
            want[*t as usize * classes + *p as usize] += 1;
        }
        for p in [1usize, 2, 5, 9] {
            let d = score_forest_distributed(&trees, reduce, &test, &MachineCfg::new(p));
            let got: Vec<u64> = (0..classes)
                .flat_map(|r| (0..classes).map(move |c| (r, c)))
                .map(|(r, c)| d.confusion.get(r, c))
                .collect();
            assert_eq!(got, want, "{reduce:?} p={p}");
            assert_eq!(d.accuracy, flat.accuracy(&test), "{reduce:?} p={p}");
        }
    }
}

proptest! {
    #![proptest_config(cases(24))]

    /// The FlatForest majority vote equals a per-record oracle that walks
    /// every member tree with `DecisionTree::predict` and takes the
    /// majority (lowest class index on ties) — on arbitrary random
    /// forests, not just induced ones.
    #[test]
    fn flat_forest_vote_equals_per_tree_oracle(
        seed in 0u64..(1u64 << 48),
        k in 1usize..7,
        n in 1usize..300,
    ) {
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        let trees = testgen::random_forest(&schema, &mut rng, k, 6, 120);
        let data = testgen::random_dataset(&schema, &mut rng, n);
        let flat = FlatForest::compile(&trees, VoteReduce::Majority);
        let mut got = vec![0u8; n];
        flat.predict_batch(&data, &mut got);
        for rid in 0..n {
            let mut votes = vec![0u32; schema.num_classes as usize];
            for tree in &trees {
                votes[tree.predict(&data, rid) as usize] += 1;
            }
            let oracle = votes
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(c, _)| c as u8)
                .unwrap();
            prop_assert_eq!(got[rid], oracle, "record {} of {} trees", rid, k);
        }
    }

    /// Damaged containers load partially: bit-flipping or truncating one
    /// tree's section marks exactly the reachable damage (the victim slot
    /// `Corrupt`; on truncation the tail slots are lost too), every slot
    /// before the victim loads clean, and re-saving the survivors is
    /// byte-deterministic (save → load → save identity).
    #[test]
    fn damaged_container_isolates_the_hit_tree(
        seed in 0u64..(1u64 << 48),
        k in 2usize..6,
        victim_sel in 0usize..16,
        truncate_sel in 0usize..2,
    ) {
        let truncate = truncate_sel == 1;
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        let trees = testgen::random_forest(&schema, &mut rng, k, 5, 60);
        let victim = victim_sel % k;
        let dir = std::env::temp_dir().join(format!(
            "scalparc-forest-prop-{}-{seed}-{k}-{victim}-{truncate}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("forest.scpf");
        forest::save_forest(&trees, &path).unwrap();
        if truncate {
            forest::truncate_at_tree_section(&path, victim).unwrap();
        } else {
            forest::damage_tree_section(&path, victim).unwrap();
        }
        let v = forest::load_forest(&path).unwrap();
        prop_assert_eq!(v.planned, k);
        prop_assert!(!v.trees[victim].is_ok(), "victim slot must not load");
        for (t, tree) in trees.iter().enumerate().take(victim) {
            prop_assert_eq!(v.trees[t].tree(), Some(tree), "slot {} before the damage", t);
        }
        if !truncate {
            // A single flipped bit is confined to the victim slot.
            for (t, tree) in trees.iter().enumerate().skip(victim + 1) {
                prop_assert_eq!(v.trees[t].tree(), Some(tree), "slot {} after the flip", t);
            }
            prop_assert_eq!(v.n_ok(), k - 1);
        }
        // Survivors re-save deterministically: save → load → save is a
        // byte-level fixed point.
        let survivors = v.surviving();
        prop_assert!(!survivors.is_empty() || victim == 0);
        if !survivors.is_empty() {
            let p1 = dir.join("survivors1.scpf");
            let p2 = dir.join("survivors2.scpf");
            forest::save_forest(&survivors, &p1).unwrap();
            let reloaded = forest::load_forest_strict(&p1).unwrap();
            prop_assert_eq!(&reloaded, &survivors);
            forest::save_forest(&reloaded, &p2).unwrap();
            prop_assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Induced-forest layout identity as a property: random seed, tree
    /// count, and machine size — tree-parallel equals serial.
    #[test]
    fn induced_forest_is_layout_invariant(
        seed in 0u64..(1u64 << 32),
        n_trees in 1usize..5,
        p in 1usize..7,
    ) {
        let data = quest(180, ClassFunc::F1, 0.05, seed);
        let fcfg = ForestConfig {
            n_trees,
            bootstrap: 0.9,
            feature_frac: 0.75,
            seed,
            schedule: ForestSchedule::Serial,
        };
        let want = train_forest(&data, &fcfg, &ParConfig::new(1)).trees;
        let got = train_forest(
            &data,
            &ForestConfig { schedule: ForestSchedule::TreeParallel, ..fcfg },
            &ParConfig::new(p),
        )
        .trees;
        prop_assert_eq!(got, want);
    }
}
