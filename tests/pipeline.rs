//! End-to-end pipeline tests: generation → (CSV round trip) → distributed
//! induction → pruning → evaluation, the path a downstream user takes.

use datagen::csv::{from_csv, to_csv};
use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::eval::{confusion_matrix, error_rate, train_test_split};
use dtree::prune::reduced_error_prune;
use scalparc::{induce, ParConfig};

#[test]
fn generate_train_evaluate() {
    let data = generate(&GenConfig {
        n: 4_000,
        func: ClassFunc::F2,
        noise: 0.0,
        seed: 1,
        profile: Profile::Paper7,
    });
    let (train, test) = train_test_split(&data, 0.25, 9);
    let tree = induce(&train, &ParConfig::new(4)).tree;
    assert!(tree.accuracy(&train) > 0.999, "noiseless data is separable");
    assert!(
        tree.accuracy(&test) > 0.95,
        "holdout accuracy {}",
        tree.accuracy(&test)
    );
    let m = confusion_matrix(&tree, &test);
    assert_eq!(m.total(), test.len() as u64);
}

#[test]
fn csv_roundtrip_preserves_the_model() {
    let data = generate(&GenConfig {
        n: 1_500,
        func: ClassFunc::F4,
        noise: 0.0,
        seed: 2,
        profile: Profile::Paper7,
    });
    let text = to_csv(&data);
    let back = from_csv(&text, &data.schema).expect("parse");
    assert_eq!(back, data);
    let a = induce(&data, &ParConfig::new(3)).tree;
    let b = induce(&back, &ParConfig::new(3)).tree;
    assert_eq!(a, b);
}

#[test]
fn noisy_pipeline_with_pruning_generalizes() {
    let noisy = generate(&GenConfig {
        n: 6_000,
        func: ClassFunc::F7,
        noise: 0.10,
        seed: 3,
        profile: Profile::Paper7,
    });
    let (train, rest) = train_test_split(&noisy, 0.4, 4);
    let (valid, test) = train_test_split(&rest, 0.5, 5);

    let grown = induce(&train, &ParConfig::new(8)).tree;
    let pruned = reduced_error_prune(&grown, &valid);
    pruned.validate();

    assert!(
        pruned.nodes.len() < grown.nodes.len(),
        "pruning must shrink"
    );
    let e_grown = error_rate(&grown, &test);
    let e_pruned = error_rate(&pruned, &test);
    assert!(
        e_pruned <= e_grown + 0.02,
        "pruned {e_pruned:.3} vs grown {e_grown:.3}"
    );
    // Both near the 10% noise floor.
    assert!(e_pruned < 0.2, "error {e_pruned:.3}");
}

#[test]
fn every_function_learnable_when_noiseless() {
    for (i, func) in ClassFunc::ALL.into_iter().enumerate() {
        let data = generate(&GenConfig {
            n: 3_000,
            func,
            noise: 0.0,
            seed: 30 + i as u64,
            profile: Profile::Full9,
        });
        let tree = induce(&data, &ParConfig::new(4)).tree;
        let acc = tree.accuracy(&data);
        assert!(acc > 0.99, "{func:?} training accuracy {acc}");
    }
}

#[test]
fn the_sprint_baseline_is_a_drop_in_replacement() {
    let data = generate(&GenConfig {
        n: 2_000,
        func: ClassFunc::F5,
        noise: 0.02,
        seed: 6,
        profile: Profile::Paper7,
    });
    let scal = induce(&data, &ParConfig::new(4));
    let spr = induce(&data, &ParConfig::new(4).sprint_baseline());
    assert_eq!(scal.tree, spr.tree);
    assert_eq!(scal.levels, spr.levels);
}

#[test]
fn out_of_core_budgeted_sprint_matches_parallel_scalparc() {
    let data = generate(&GenConfig {
        n: 600,
        func: ClassFunc::F2,
        noise: 0.0,
        seed: 77,
        profile: Profile::Paper7,
    });
    let parallel = induce(&data, &ParConfig::new(4)).tree;
    let stats = diskio::IoStats::new();
    let cfg = diskio::OocConfig {
        dir: std::env::temp_dir().join("scalparc-xtest-ooc"),
        ..diskio::OocConfig::with_budget(100)
    };
    let (ooc_tree, counters) = diskio::induce_ooc(&data, &cfg, &stats);
    assert_eq!(
        ooc_tree, parallel,
        "budget-staged out-of-core SPRINT must match the distributed tree"
    );
    assert!(counters.staged_nodes > 0, "budget 100 must force staging");
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

#[test]
fn persisted_model_round_trips_through_all_classifiers() {
    use dtree::model_io::{from_text, to_text};
    let data = generate(&GenConfig {
        n: 900,
        func: ClassFunc::F3,
        noise: 0.02,
        seed: 78,
        profile: Profile::Full9,
    });
    let tree = induce(&data, &ParConfig::new(6)).tree;
    let loaded = from_text(&to_text(&tree)).expect("parse");
    assert_eq!(loaded, tree);
    for rid in (0..data.len()).step_by(37) {
        assert_eq!(tree.predict(&data, rid), loaded.predict(&data, rid));
    }
}

#[test]
fn level_trace_accounts_for_every_record() {
    let data = generate(&GenConfig {
        n: 2_000,
        func: ClassFunc::F2,
        noise: 0.0,
        seed: 79,
        profile: Profile::Paper7,
    });
    let r = induce(&data, &ParConfig::new(3));
    assert_eq!(r.trace.len(), r.levels as usize);
    // Level 0 covers the whole training set; later levels cover no more.
    assert_eq!(r.trace[0].records, 2_000);
    assert!(r.trace.windows(2).all(|w| w[1].records <= w[0].records));
    // Splits never exceed active nodes.
    assert!(r.trace.iter().all(|l| l.splits <= l.active_nodes));
}
