//! File-based workflow: export a generated training set to CSV, read it
//! back, train with both the serial and the parallel classifier, and verify
//! the models agree — the round trip an external user of the library would
//! take with their own data.
//!
//! Run: `cargo run --release -p scalparc-examples --example csv_workflow`

use datagen::csv::{read_csv, write_csv};
use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::sprint::{self, SprintConfig};
use scalparc::{induce, ParConfig};

fn main() {
    let dir = std::env::temp_dir().join("scalparc-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("applicants.csv");

    // Produce a file as an external pipeline would.
    let data = generate(&GenConfig {
        n: 5_000,
        func: ClassFunc::F4,
        noise: 0.0,
        seed: 3,
        profile: Profile::Paper7,
    });
    write_csv(&data, &path).expect("write CSV");
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "wrote {} records to {} ({bytes} bytes)",
        data.len(),
        path.display()
    );

    // Read it back against the known schema.
    let loaded = read_csv(&path, &Profile::Paper7.schema()).expect("read CSV");
    assert_eq!(loaded, data, "CSV round-trip must be exact");
    println!("round-trip exact: {} records", loaded.len());

    // Train serial and parallel models on the loaded data.
    let serial = sprint::induce(&loaded, &SprintConfig::default());
    let parallel = induce(&loaded, &ParConfig::new(4)).tree;
    assert_eq!(serial, parallel, "serial and parallel trees must agree");
    println!(
        "serial SPRINT and 4-processor ScalParC induced the identical tree: {} nodes, accuracy {:.4}",
        serial.nodes.len(),
        serial.accuracy(&loaded)
    );

    std::fs::remove_file(&path).ok();
}
