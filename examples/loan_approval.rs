//! Loan-approval modelling: the full classification pipeline on noisy data —
//! train / validation / test split, parallel induction, reduced-error
//! pruning, and a confusion matrix. This is the kind of data-mining
//! workload the paper's introduction motivates (classifying loan
//! applicants by disposable income, function F7).
//!
//! Run: `cargo run --release -p scalparc-examples --example loan_approval`

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::eval::{confusion_matrix, train_test_split};
use dtree::prune::reduced_error_prune;
use scalparc::{induce, ParConfig};

fn main() {
    // 60k applicants, 5% label noise (clerical errors in the ledger).
    let data = generate(&GenConfig {
        n: 60_000,
        func: ClassFunc::F7,
        noise: 0.05,
        seed: 7,
        profile: Profile::Full9,
    });

    // 60% train, 20% validation (for pruning), 20% test.
    let (train, rest) = train_test_split(&data, 0.4, 1);
    let (valid, test) = train_test_split(&rest, 0.5, 2);
    println!(
        "records: train {}, validation {}, test {}",
        train.len(),
        valid.len(),
        test.len()
    );

    // Induce on 16 virtual processors.
    let result = induce(&train, &ParConfig::new(16));
    let full = result.tree;
    println!(
        "grown tree: {} nodes, depth {} (over-fit to the 5% noise)",
        full.nodes.len(),
        full.depth()
    );
    println!(
        "  train accuracy {:.4}, test accuracy {:.4}",
        full.accuracy(&train),
        full.accuracy(&test)
    );

    // Prune against the validation set.
    let pruned = reduced_error_prune(&full, &valid);
    println!(
        "pruned tree: {} nodes, depth {}",
        pruned.nodes.len(),
        pruned.depth()
    );
    println!(
        "  train accuracy {:.4}, test accuracy {:.4} (noise ceiling 0.95)",
        pruned.accuracy(&train),
        pruned.accuracy(&test)
    );

    // Confusion matrix on the test set: row = truth, column = prediction.
    let m = confusion_matrix(&pruned, &test);
    println!("confusion matrix (rows = true approve/deny):");
    println!("              pred 0     pred 1");
    for class in 0..2 {
        println!(
            "  true {class}   {:>8}   {:>8}",
            m.get(class, 0),
            m.get(class, 1)
        );
    }
}
