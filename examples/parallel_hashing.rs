//! The parallel hashing paradigm as a reusable primitive.
//!
//! The paper notes that "the proposed parallel hashing paradigm can be used
//! to parallelize other algorithms that require many concurrent updates to
//! a large hash table". This example uses it for something unrelated to
//! classification: a distributed inverted index (word → last document id)
//! built with the chained variant, and a dense-id lookup table built with
//! the collision-free variant — both over an 8-processor simulated machine.
//!
//! Run: `cargo run --release -p scalparc-examples --example parallel_hashing`

use dhash::{ChainedTable, DistTable};
use mpsim::run_simple;

fn main() {
    let p = 8;

    // --- Collision-free dense table: global record id → shard assignment.
    let n = 1_000_000u64;
    let outs = run_simple(p, move |comm| {
        let mut table = DistTable::<u16>::new(comm, n);
        // Each rank claims the ids congruent to its rank and records a
        // shard computed locally — a million concurrent updates.
        let mine: Vec<(u64, u16)> = (comm.rank() as u64..n)
            .step_by(p)
            .map(|id| (id, (id % 911) as u16))
            .collect();
        table.update_blocked(comm, &mine, (n as usize) / p);
        // Every rank then resolves a scattered sample of ids.
        let sample: Vec<u64> = (0..n).step_by(99_991).collect();
        let shards = table.inquire(comm, &sample);
        let ok = sample
            .iter()
            .zip(&shards)
            .all(|(id, s)| *s == Some((id % 911) as u16));
        (comm.tracker().category(dhash::TABLE_MEM).peak, ok)
    });
    println!("dense table: 1M ids over {p} ranks");
    for (r, (peak, ok)) in outs.iter().enumerate() {
        println!(
            "  rank {r}: resident block {:.2} MB, sample verified: {ok}",
            *peak as f64 / 1e6
        );
    }

    // --- Chained table: word → last document mentioning it.
    let docs: &[(&str, &str)] = &[
        ("d1", "the quick brown fox"),
        ("d2", "jumps over the lazy dog"),
        ("d3", "the dog barks"),
        ("d4", "quick thinking wins the day"),
    ];
    let outs = run_simple(4, move |comm| {
        let mut index = ChainedTable::<String, String>::new(comm, 64);
        // Each rank indexes one document (concurrent inserts to one table).
        let (doc, text) = docs[comm.rank()];
        let entries: Vec<(String, String)> = text
            .split_whitespace()
            .map(|w| (w.to_string(), doc.to_string()))
            .collect();
        index.insert(comm, &entries);
        // Rank 0 queries the index that all ranks just built together.
        let queries: Vec<String> = ["dog", "quick", "penguin"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let hits = index.lookup(comm, &queries);
        (comm.rank(), index.local_entries(), hits)
    });
    println!("inverted index: 4 documents indexed by 4 ranks");
    for (r, entries, _) in &outs {
        println!("  rank {r}: {entries} postings resident");
    }
    let hits = &outs[0].2;
    for (word, hit) in ["dog", "quick", "penguin"].iter().zip(hits) {
        match hit {
            Some(doc) => println!("  lookup {word:>8} -> {doc}"),
            None => println!("  lookup {word:>8} -> (absent)"),
        }
    }
}
