//! Quickstart: generate a synthetic training set, induce a decision tree
//! with ScalParC on a simulated 8-processor machine, and inspect the model.
//!
//! Run: `cargo run --release -p scalparc-examples --example quickstart`

use datagen::{generate, ClassFunc, GenConfig, Profile};
use scalparc::{induce, ParConfig};

fn main() {
    // 1. A Quest-style training set: 20k loan applicants, labelled by
    //    function F2 (age × salary bands), the paper's 7-attribute profile.
    let data = generate(&GenConfig {
        n: 20_000,
        func: ClassFunc::F2,
        noise: 0.0,
        seed: 42,
        profile: Profile::Paper7,
    });
    println!(
        "training set: {} records, {} attributes, class balance {:?}",
        data.len(),
        data.schema.num_attrs(),
        data.class_hist()
    );

    // 2. Induce on 8 virtual processors.
    let result = induce(&data, &ParConfig::new(8));
    println!(
        "induced tree: {} nodes ({} leaves), depth {}, {} levels of parallel work",
        result.tree.nodes.len(),
        result.tree.num_leaves(),
        result.tree.depth(),
        result.levels
    );

    // 3. Evaluate and show the top of the tree.
    println!("training accuracy: {:.4}", result.tree.accuracy(&data));
    let rendering = result.tree.render();
    println!("--- first lines of the model ---");
    for line in rendering.lines().take(12) {
        println!("{line}");
    }

    // 4. Machine-level statistics from the simulated run.
    println!("--- per-run machine statistics ---");
    println!(
        "simulated parallel runtime: {:.4}s (free-running mode counts only modelled communication)",
        result.stats.time_s()
    );
    println!(
        "peak memory per processor: {:.2} MB",
        result.stats.peak_mem_per_proc() as f64 / 1e6
    );
    println!(
        "worst per-processor communication volume: {:.2} MB",
        result.stats.max_comm_volume_per_proc() as f64 / 1e6
    );
}
