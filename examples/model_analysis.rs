//! Model analysis: the library's post-induction toolkit — gini vs entropy
//! criteria, feature importance, and model persistence — on a concept
//! where the informative attributes are known by construction (F5 uses
//! age, salary, and loan; everything else is noise).
//!
//! Run: `cargo run --release -p scalparc-examples --example model_analysis`

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::model_io;
use dtree::{Criterion, SplitOptions};
use scalparc::{induce, ParConfig};

fn main() {
    let data = generate(&GenConfig {
        n: 30_000,
        func: ClassFunc::F5, // age × salary × loan bands
        noise: 0.02,
        seed: 11,
        profile: Profile::Paper7,
    });
    let names: Vec<&str> = data.schema.attrs.iter().map(|a| a.name.as_str()).collect();

    for criterion in [Criterion::Gini, Criterion::Entropy] {
        let mut cfg = ParConfig::new(8);
        cfg.induce.split = SplitOptions {
            criterion,
            ..SplitOptions::default()
        };
        let tree = induce(&data, &cfg).tree;
        println!(
            "{criterion:?}: {} nodes, depth {}, training accuracy {:.4}",
            tree.nodes.len(),
            tree.depth(),
            tree.accuracy(&data)
        );
        let imp = tree.feature_importance(criterion);
        let mut ranked: Vec<(&str, f64)> = names.iter().copied().zip(imp.iter().copied()).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        print!("  importance:");
        for (name, v) in ranked.iter().take(4) {
            print!(" {name}={v:.3}");
        }
        println!();
    }

    // Persist the (gini) model and reload it elsewhere.
    let tree = induce(&data, &ParConfig::new(8)).tree;
    let path = std::env::temp_dir().join("f5-model.tree");
    model_io::save(&tree, &path).expect("save");
    let loaded = model_io::load(&path).expect("load");
    assert_eq!(loaded, tree);
    println!(
        "persisted {} bytes to {} and reloaded bit-identically",
        std::fs::metadata(&path).unwrap().len(),
        path.display()
    );
    std::fs::remove_file(&path).ok();
}
