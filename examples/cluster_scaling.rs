//! What-if machine study: run the same induction under two communication
//! cost models — the paper's Cray T3D (1998) and a modern commodity
//! cluster — and watch where the scalability knee moves.
//!
//! This exercises the `mpsim` cost model as a first-class experimental
//! knob: the algorithm and data are identical, only the machine changes.
//!
//! Run: `cargo run --release -p scalparc-examples --example cluster_scaling`

use datagen::{generate, GenConfig};
use mpsim::{CostModel, TimingMode};
use scalparc::{induce_measured, ParConfig};

fn run(data: &dtree::Dataset, p: usize, cost: CostModel) -> (f64, f64) {
    let cfg = ParConfig {
        procs: p,
        cost,
        timing: TimingMode::Measured,
        trace: None,
        induce: Default::default(),
    };
    let r = induce_measured(data, &cfg, 2);
    let t = r.stats.time_s();
    let comm = r.stats.max_comm_ns() as f64 / 1e9;
    (t, comm)
}

fn main() {
    let data = generate(&GenConfig::paper(50_000, 42));
    println!("# ScalParC on 50k records under two machines");
    println!(
        "# {:>4} {:>12} {:>12} {:>14} {:>14}",
        "p", "t3d time", "t3d comm", "cluster time", "cluster comm"
    );

    let mut t3d_t1 = 0.0;
    let mut cl_t1 = 0.0;
    for &p in &[1usize, 2, 4, 8, 16, 32, 64] {
        let (t3d_t, t3d_c) = run(&data, p, CostModel::t3d());
        let (cl_t, cl_c) = run(&data, p, CostModel::modern_cluster());
        if p == 1 {
            t3d_t1 = t3d_t;
            cl_t1 = cl_t;
        }
        println!(
            "# {p:>4} {t3d_t:>10.3}s {t3d_c:>10.3}s {cl_t:>12.3}s {cl_c:>12.3}s   speedup {:>5.1} vs {:>5.1}",
            t3d_t1 / t3d_t,
            cl_t1 / cl_t,
        );
    }
    println!("#");
    println!("# The T3D's 100µs latencies flatten the speedup curve at modest p for");
    println!("# this (scaled-down) problem; the low-latency cluster keeps scaling —");
    println!("# the same effect the paper gets by growing N instead.");
}
